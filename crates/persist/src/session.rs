//! [`DurableSession`]: a [`Session`] whose mutations survive `kill -9`.
//!
//! The session's write-ahead observer hook does the heavy lifting: every
//! mutation is offered to the observer *after* validation but *before*
//! it touches memory, so the WAL orders strictly ahead of RAM. If the
//! log append (or its fsync under [`FsyncPolicy::Always`]) fails, the
//! mutation is aborted and the caller sees the error — memory and disk
//! cannot disagree in the dangerous direction (memory ahead of disk).
//!
//! A checkpoint compacts the log: serialize the whole world, publish it
//! atomically, rotate to a fresh WAL for the next epoch, delete the old
//! one. Crashes anywhere in that sequence are recovered by
//! [`crate::recover::recover`], which this type runs on open.

use crate::checkpoint::{prune_checkpoints, sync_dir, wal_path, write_checkpoint};
use crate::codec::{
    encode_assume_record, encode_checkpoint, encode_pop_record, encode_program_record,
    encode_retract_record, encode_symbols_record,
};
use crate::group::{CommitTicket, GroupCommitter, SharedWal};
use crate::recover::{recover, RecoveryReport};
use crate::wal::{FsyncPolicy, WalWriter};
use hdl_base::{Error, Result, SymbolTable};
use hdl_core::session::{Mutation, SessionObserver};
use hdl_core::{Session, Snapshot};
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// The observer installed into the wrapped session. In direct mode it
/// commits (append + policy fsync) inline under the WAL lock; in group
/// mode it hands the record group to the shared [`GroupCommitter`] and
/// blocks until the batch fsync covering it has returned. In *pipelined*
/// group mode it does not block at all: it enqueues the records and
/// *stages* the records where the caller can flush them into one
/// committer submission via
/// [`DurableSession::take_pending_commits`] — the caller owns the
/// obligation to wait the resulting ticket before acking anything.
struct WalObserver {
    shared: Arc<Mutex<SharedWal>>,
    group: Option<Arc<GroupCommitter>>,
    /// `Some` selects pipelined mode; the buffer accumulates the WAL
    /// records of every mutation not yet handed to the committer, in
    /// application order. A caller applying a whole window of mutations
    /// under one lock hold then pays ONE submission (one queue hop, one
    /// ticket) for the window instead of one per mutation.
    staged: Option<Arc<Mutex<Vec<Vec<u8>>>>>,
}

impl SessionObserver for WalObserver {
    fn on_mutation(&mut self, symbols: &SymbolTable, mutation: &Mutation<'_>) -> Result<()> {
        let mut guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(2);
        if symbols.len() > guard.synced {
            let names: Vec<&str> = symbols
                .iter()
                .skip(guard.synced)
                .map(|(_, name)| name)
                .collect();
            payloads.push(encode_symbols_record(&names));
        }
        payloads.push(match mutation {
            Mutation::Program { rules, facts } => encode_program_record(rules, facts),
            Mutation::Retract(fact) => encode_retract_record(fact),
            Mutation::Assume(facts) => encode_assume_record(facts),
            Mutation::PopAssumption => encode_pop_record(),
        });
        match &self.group {
            None => {
                let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
                guard.writer.commit(&refs)?;
                // Only advance after a successful commit: if the append
                // failed, the next mutation re-sends the same symbol
                // suffix (replay tolerates re-interning — ids are
                // positional and idempotent).
                guard.synced = symbols.len();
                Ok(())
            }
            Some(committer) => match &self.staged {
                None => {
                    // The committer takes the WAL lock itself; holding it
                    // across the blocking submit would deadlock. Mutations
                    // on one session are serialized (`&mut Session`), so
                    // the watermark cannot race between release and
                    // re-lock.
                    drop(guard);
                    committer.commit(&self.shared, payloads)?;
                    let mut guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.synced = symbols.len();
                    Ok(())
                }
                Some(buffer) => {
                    // Pipelined: advance the watermark at *staging* time —
                    // the suffix is already in this payload, and staging
                    // preserves order, so the next mutation must not
                    // re-send it. If the commit later fails, the caller
                    // sees the ticket error and must stop using the
                    // session (memory is ahead of a failed log).
                    guard.synced = symbols.len();
                    drop(guard);
                    buffer
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(payloads);
                    Ok(())
                }
            },
        }
    }
}

/// State present only when a persist dir is configured.
struct Durable {
    dir: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    shared: Arc<Mutex<SharedWal>>,
    report: RecoveryReport,
    /// The committer, when commits route through group mode.
    group: Option<Arc<GroupCommitter>>,
    /// The pipelined-mode staging buffer shared with the observer.
    staged: Option<Arc<Mutex<Vec<Vec<u8>>>>>,
}

/// A session with optional durability; derefs to [`Session`].
pub struct DurableSession {
    session: Session,
    durable: Option<Durable>,
}

/// How many published checkpoints to keep around (the newest, plus one
/// fallback in case the newest is later found corrupt).
const KEEP_CHECKPOINTS: usize = 2;

impl DurableSession {
    /// Opens (recovering if needed) a durable session rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self> {
        Self::open_inner(dir.into(), policy, None, false)
    }

    /// Like [`open`](Self::open), but routes every WAL commit through a
    /// shared [`GroupCommitter`] so concurrent sessions' mutations are
    /// batched into one fsync pass per drain. The durability contract is
    /// unchanged: the mutating call returns only after this session's
    /// records are on disk under the configured policy.
    pub fn open_grouped(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        committer: Arc<GroupCommitter>,
    ) -> Result<Self> {
        Self::open_inner(dir.into(), policy, Some(committer), false)
    }

    /// Like [`open_grouped`](Self::open_grouped), but mutating calls
    /// return as soon as their records are *enqueued* with the committer
    /// — durability arrives later, on the [`CommitTicket`] collected via
    /// [`take_pending_commit`](Self::take_pending_commit). The caller
    /// MUST wait that ticket before acking the mutation to anyone, and
    /// must stop mutating the session if it resolves to an error (the
    /// in-memory state is then ahead of a failed log). This is the mode
    /// the multi-tenant server uses: it lets concurrent connections
    /// stack commits into deep per-WAL batches instead of serializing
    /// each one behind its predecessor's fsync.
    pub fn open_grouped_pipelined(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        committer: Arc<GroupCommitter>,
    ) -> Result<Self> {
        Self::open_inner(dir.into(), policy, Some(committer), true)
    }

    fn open_inner(
        dir: PathBuf,
        policy: FsyncPolicy,
        group: Option<Arc<GroupCommitter>>,
        pipelined: bool,
    ) -> Result<Self> {
        let recovered = recover(&dir, policy)?;
        let mut session = recovered.session;
        let shared = Arc::new(Mutex::new(SharedWal {
            writer: recovered.writer,
            synced: session.symbols().len(),
            epoch: recovered.epoch,
        }));
        let staged = if pipelined && group.is_some() {
            Some(Arc::new(Mutex::new(Vec::new())))
        } else {
            None
        };
        session.set_observer(Some(Box::new(WalObserver {
            shared: Arc::clone(&shared),
            group: group.clone(),
            staged: staged.clone(),
        })));
        Ok(DurableSession {
            session,
            durable: Some(Durable {
                dir,
                policy,
                epoch: recovered.epoch,
                shared,
                report: recovered.report,
                group,
                staged,
            }),
        })
    }

    /// A plain in-memory session with no durability (the default mode of
    /// the CLI when `--persist-dir` is not given).
    pub fn ephemeral() -> Self {
        DurableSession {
            session: Session::new(),
            durable: None,
        }
    }

    /// Whether mutations are being logged.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The persist directory, when durable.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The active checkpoint epoch (0 before the first checkpoint, and
    /// always 0 when ephemeral).
    pub fn epoch(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.epoch)
    }

    /// What recovery found when this session was opened.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.report)
    }

    /// A replication tap on this session's WAL (see
    /// [`crate::replicate::WalTap`]): lets a shipper thread read
    /// committed log windows and checkpoint images without holding the
    /// session lock. `None` when ephemeral.
    pub fn wal_tap(&self) -> Option<crate::replicate::WalTap> {
        self.durable
            .as_ref()
            .map(|d| crate::replicate::WalTap::new(Arc::clone(&d.shared), d.dir.clone()))
    }

    /// Flushes every mutation staged since the last flush into ONE
    /// committer submission and returns its durability ticket(s), when
    /// the session was opened with
    /// [`open_grouped_pipelined`](Self::open_grouped_pipelined). Returns
    /// an empty vec in every other mode (the mutating call itself
    /// already blocked until durable) and when nothing is staged. The
    /// single submission is what makes deep windows cheap: one queue
    /// hop and one ticket amortize over however many mutations the
    /// caller applied under its lock hold.
    pub fn take_pending_commits(&mut self) -> Vec<CommitTicket> {
        let Some(durable) = &self.durable else {
            return Vec::new();
        };
        let (Some(committer), Some(buffer)) = (&durable.group, &durable.staged) else {
            return Vec::new();
        };
        let payloads = std::mem::take(&mut *buffer.lock().unwrap_or_else(PoisonError::into_inner));
        if payloads.is_empty() {
            return Vec::new();
        }
        vec![committer.submit(&durable.shared, payloads)]
    }

    /// Blocks until every record this session has enqueued with the
    /// group committer is durable. A no-op outside group mode. Used
    /// before checkpoint rotation (records landing after the rotation
    /// would replay on top of a checkpoint that already contains them)
    /// and useful to callers as an explicit durability barrier.
    pub fn flush_commits(&mut self) -> Result<()> {
        for ticket in self.take_pending_commits() {
            ticket.wait()?;
        }
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let Some(committer) = &durable.group else {
            return Ok(());
        };
        // FIFO per WAL: once the empty barrier group is durable, so is
        // everything submitted before it — including tickets a
        // concurrent caller collected but has not finished waiting.
        committer.commit(&durable.shared, Vec::new())
    }

    /// Serializes the whole session state to a new checkpoint epoch,
    /// rotates the WAL, and deletes the old log. Returns the new epoch.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.durable.is_none() {
            return Err(Error::Invalid("session has no persist dir".into()));
        }
        // Drain in-flight group commits first: rotation deletes the WAL
        // they target, and any record appended after the image below is
        // serialized would double-apply on recovery.
        self.flush_commits()?;
        let durable = self.durable.as_mut().expect("checked above");
        let epoch = durable.epoch + 1;
        let image = encode_checkpoint(
            epoch,
            Snapshot::epoch_watermark(),
            self.session.symbols(),
            self.session.rulebase(),
            self.session.database(),
            self.session.assumptions(),
        );
        write_checkpoint(&durable.dir, epoch, &image)?;
        // The checkpoint is live from here: even if rotation below dies,
        // recovery selects it and discards the old epoch's WAL.
        let fresh = WalWriter::create(&wal_path(&durable.dir, epoch), epoch, durable.policy)?;
        sync_dir(&durable.dir)?;
        let old_path = {
            let mut guard = durable
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let old = guard.writer.path().to_path_buf();
            guard.writer = fresh;
            guard.synced = self.session.symbols().len();
            guard.epoch = epoch;
            old
        };
        let _ = std::fs::remove_file(old_path);
        prune_checkpoints(&durable.dir, KEEP_CHECKPOINTS);
        durable.epoch = epoch;
        Ok(epoch)
    }
}

impl Deref for DurableSession {
    type Target = Session;

    fn deref(&self) -> &Session {
        &self.session
    }
}

impl DerefMut for DurableSession {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use hdl_base::GroundAtom;

    const PROGRAM: &str = "edge(a, b). edge(b, c). edge(c, d).\n\
        tc(X, Y) :- edge(X, Y).\n\
        tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
        back(X) :- tc(X, a)[add: edge(d, a)].\n";

    fn parse_fact(session: &mut Session, text: &str) -> GroundAtom {
        let rb = hdl_core::parse_program(text, session.symbols_mut()).unwrap();
        let (_, mut facts) = hdl_core::split_facts(rb);
        facts.pop().unwrap()
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let dir = TempDir::new("durable-wal-only");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            let f = parse_fact(&mut s, "edge(d, e).");
            s.assert_fact(f).unwrap();
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
        let report = s.recovery_report().unwrap();
        assert_eq!(report.checkpoint_epoch, 0);
        assert!(report.records_replayed >= 2);
        assert_eq!(report.records_truncated, 0);
    }

    #[test]
    fn checkpoint_rotates_wal_and_survives_reopen() {
        let dir = TempDir::new("durable-ckpt");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            assert_eq!(s.checkpoint().unwrap(), 1);
            // Post-checkpoint mutations land in the next epoch's WAL.
            let f = parse_fact(&mut s, "edge(d, e).");
            s.assert_fact(f).unwrap();
            let g = parse_fact(&mut s, "edge(a, b).");
            assert!(s.retract_fact(&g).unwrap());
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        let report = s.recovery_report().unwrap().clone();
        assert_eq!(report.checkpoint_epoch, 1);
        assert_eq!(report.records_replayed, 3); // symbols + assert + retract
        assert!(s.ask("?- tc(b, e).").unwrap());
        assert!(!s.ask("?- tc(a, b).").unwrap());
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.checkpoint().unwrap(), 2);
    }

    #[test]
    fn assumptions_and_pops_are_durable() {
        let dir = TempDir::new("durable-assume");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::EveryN(4)).unwrap();
            s.load(PROGRAM).unwrap();
            let f = parse_fact(&mut s, "edge(d, a).");
            s.assume(vec![f]).unwrap();
            let g = parse_fact(&mut s, "edge(z, z).");
            s.assume(vec![g]).unwrap();
            s.pop_assumption().unwrap();
            assert_eq!(s.checkpoint().unwrap(), 1);
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert_eq!(s.assumptions().len(), 1);
        assert!(s.ask("?- tc(d, c).").unwrap());
        s.pop_assumption().unwrap();
        assert!(!s.ask("?- tc(d, c).").unwrap());
    }

    /// An injected append fault must abort the mutation without
    /// committing it to memory *or* leaving a durable trace.
    #[cfg(feature = "failpoints")]
    #[test]
    fn wal_append_fault_aborts_the_mutation() {
        use hdl_base::failpoint::{self, FaultSpec};
        let dir = TempDir::new("durable-fault");
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        s.load(PROGRAM).unwrap();
        failpoint::configure("persist::wal_append", FaultSpec::erroring(1).fires(1), 7);
        let f = parse_fact(&mut s, "edge(d, e).");
        let denied = s.assert_fact(f.clone());
        failpoint::clear();
        assert!(denied.is_err());
        assert!(!s.ask("?- tc(a, e).").unwrap());
        // Retrying after the fault clears works, and the retry (not the
        // aborted attempt) is what a reopen restores.
        s.assert_fact(f).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
        drop(s);
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
    }

    /// Incremental retraction maintains the in-memory model without
    /// changing what hits the WAL: a `Retract` record replays to the
    /// exact same durable state whether or not the writer had a
    /// materialized model, byte for byte.
    #[test]
    fn incremental_retractions_replay_byte_identically() {
        let dir = TempDir::new("durable-incremental");
        let live_image;
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            // Materialize, then mutate through the incremental path.
            s.model().unwrap();
            let f = parse_fact(&mut s, "edge(a, c).");
            s.assert_fact(f).unwrap();
            let g = parse_fact(&mut s, "edge(b, c).");
            assert!(s.retract_fact(&g).unwrap());
            let stats = s.maintenance_stats().unwrap();
            assert_eq!(stats.full_builds, 1, "only the initial build");
            // `back`'s hypothetical premise puts `tc` in a hyp-goal
            // cone, so both mutations take the conservative reduced
            // recompute rather than fact-level DRed — still incremental
            // (no full rebuild, no domain rebuild).
            assert_eq!(stats.conservative_updates, 2);
            assert_eq!(stats.domain_rebuilds, 0);
            assert!(s.ask("?- tc(a, d).").unwrap(), "rerouted via edge(a, c)");
            live_image = encode_checkpoint(
                1,
                0,
                s.symbols(),
                s.rulebase(),
                s.database(),
                s.assumptions(),
            );
        }
        // Recovery replays the Retract record cold (no model), yet the
        // durable state it reconstructs is identical.
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(!s.is_materialized(), "models are not persisted");
        let recovered_image = encode_checkpoint(
            1,
            0,
            s.symbols(),
            s.rulebase(),
            s.database(),
            s.assumptions(),
        );
        assert_eq!(live_image, recovered_image, "byte-identical state");
        // And a fresh materialization over the recovered state agrees
        // with the incrementally maintained one.
        assert!(s.ask("?- tc(a, d).").unwrap());
        assert!(!s.ask("?- edge(b, c).").unwrap());
        let model_facts = s.model().unwrap().len();
        assert!(model_facts > 0);
    }

    /// Group-committed sessions replay to the exact same state as
    /// direct-committed ones: many sessions hammer one committer
    /// concurrently, and each reopened world matches its writer.
    #[test]
    fn grouped_sessions_recover_identically() {
        let committer = GroupCommitter::new();
        let dirs: Vec<TempDir> = (0..4).map(|i| TempDir::new(&format!("grp-{i}"))).collect();
        std::thread::scope(|scope| {
            for (i, dir) in dirs.iter().enumerate() {
                let committer = Arc::clone(&committer);
                scope.spawn(move || {
                    let mut s =
                        DurableSession::open_grouped(dir.path(), FsyncPolicy::Always, committer)
                            .unwrap();
                    s.load(PROGRAM).unwrap();
                    for j in 0..10 {
                        let f = parse_fact(&mut s, &format!("edge(t{i}_{j}, a)."));
                        s.assert_fact(f).unwrap();
                    }
                    let g = parse_fact(&mut s, &format!("edge(t{i}_0, a)."));
                    assert!(s.retract_fact(&g).unwrap());
                });
            }
        });
        assert_eq!(committer.stats().commits, 4 * 12);
        committer.shutdown();
        for (i, dir) in dirs.iter().enumerate() {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            assert!(!s.ask(&format!("?- edge(t{i}_0, a).")).unwrap());
            assert!(s.ask(&format!("?- tc(t{i}_9, d).")).unwrap());
            assert_eq!(s.recovery_report().unwrap().records_truncated, 0);
        }
    }

    /// Pipelined mode: mutations return before durability, staged
    /// records flush into one submission per `take_pending_commits`
    /// call, checkpoints drain in-flight commits, and recovery sees the
    /// exact same world as a blocking session would.
    #[test]
    fn pipelined_sessions_ack_late_and_recover_identically() {
        let committer = GroupCommitter::new();
        let dir = TempDir::new("pipelined");
        {
            let mut s = DurableSession::open_grouped_pipelined(
                dir.path(),
                FsyncPolicy::Always,
                Arc::clone(&committer),
            )
            .unwrap();
            s.load(PROGRAM).unwrap();
            let mut tickets = s.take_pending_commits();
            assert_eq!(tickets.len(), 1, "pipelined mode yields tickets");
            // Several mutations without collecting: the records stage up
            // and flush as ONE submission — a window costs one ticket,
            // not eight.
            for j in 0..8 {
                let f = parse_fact(&mut s, &format!("edge(p{j}, a)."));
                s.assert_fact(f).unwrap();
            }
            let batch = s.take_pending_commits();
            assert_eq!(batch.len(), 1, "a whole window flushes as one submission");
            assert!(s.take_pending_commits().is_empty(), "nothing staged twice");
            tickets.extend(batch);
            // Checkpoint must drain the pipeline before rotating.
            assert_eq!(s.checkpoint().unwrap(), 1);
            let f = parse_fact(&mut s, "edge(post, a).");
            s.assert_fact(f).unwrap();
            s.flush_commits().unwrap();
            for t in tickets {
                t.wait().unwrap();
            }
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        let report = s.recovery_report().unwrap().clone();
        assert_eq!(report.checkpoint_epoch, 1);
        assert_eq!(report.records_truncated, 0);
        assert!(s.ask("?- tc(p7, d).").unwrap());
        assert!(s.ask("?- tc(post, d).").unwrap());
        committer.shutdown();
    }

    #[test]
    fn ephemeral_sessions_refuse_checkpoints() {
        let mut s = DurableSession::ephemeral();
        s.load("p(a).").unwrap();
        assert!(!s.is_durable());
        assert!(s.checkpoint().is_err());
        assert!(s.recovery_report().is_none());
    }

    #[test]
    fn reopen_is_idempotent_when_nothing_changed() {
        let dir = TempDir::new("durable-idem");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
        }
        for _ in 0..3 {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            assert!(s.ask("?- tc(a, d).").unwrap());
        }
    }
}
