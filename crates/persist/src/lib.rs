//! # hdl-persist
//!
//! Durability for hypothetical-Datalog sessions: a checksummed
//! write-ahead log of session mutations, atomic checkpointed snapshots
//! of the full session state, and crash recovery that restores the
//! newest valid checkpoint and replays the WAL tail — stopping cleanly
//! (truncate and warn, never panic) at the first torn or corrupt record.
//!
//! The durability contract, end to end:
//!
//! 1. Every mutation is offered to the log *before* it mutates memory
//!    (the [`hdl_core::session::SessionObserver`] hook); a failed append
//!    aborts the mutation.
//! 2. Under [`wal::FsyncPolicy::Always`], an acked mutation has been
//!    fsynced — recovery after `kill -9` (or power loss) restores it.
//! 3. A checkpoint publishes atomically (temp file, fsync, rename,
//!    directory fsync) and only then rotates the log, so every crash
//!    window leaves either the old world or the new one intact.
//! 4. Everything on disk is CRC32-framed and structurally validated on
//!    the way back in; arbitrary corruption degrades to a truncated
//!    tail or a skipped checkpoint, reported in [`RecoveryReport`].
//!
//! Crash windows are exercised for real by the env-armed hard-crash
//! points in [`crashpoint`] (`HDL_CRASH_AT=persist::wal_append` etc.),
//! which the `crash_recovery` integration test drives in child
//! processes; the softer error-injection failpoints at the same sites
//! light up under the `failpoints` cargo feature.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crashpoint;
pub mod group;
pub mod recover;
pub mod replicate;
pub mod session;
pub mod wal;

#[cfg(test)]
pub(crate) mod testutil;

pub use codec::{decode_checkpoint, decode_record, encode_checkpoint, WalRecord};
pub use group::{CommitTicket, GroupCommitStats, GroupCommitter};
pub use recover::{recover, Recovered, RecoveryReport};
pub use replicate::{AckTracker, Position, Replica, Ship, WalTap};
pub use session::DurableSession;
pub use wal::{read_wal, FsyncPolicy, WalWriter};
