//! Env-armed hard-crash points for the crash-recovery test harness.
//!
//! Unlike `hdl_base::failpoint` (which injects *recoverable* faults —
//! panics, delays, errors — behind a cargo feature), a crash point kills
//! the whole process with [`std::process::abort`], exactly like a
//! `kill -9` landing between two syscalls. Crash points are compiled
//! unconditionally: they cost one relaxed atomic load of a lazily parsed
//! environment variable, and production processes never set it.
//!
//! Arming: `HDL_CRASH_AT=<site>` aborts on the first hit of `<site>`;
//! `HDL_CRASH_AT=<site>:<n>` aborts on the n-th hit. Sites:
//!
//! | site                         | crash window exercised                  |
//! |------------------------------|-----------------------------------------|
//! | `persist::wal_append`        | torn record: length prefix + partial payload on disk |
//! | `persist::wal_fsync`         | record written (kernel page cache) but never acked    |
//! | `persist::checkpoint_write`  | partial checkpoint temp file                          |
//! | `persist::checkpoint_rename` | complete temp file, rename never happened             |
//! | `replicate::ship`            | primary dies before sending a planned window          |
//! | `replicate::apply`           | follower dies with a received window unwritten        |
//! | `replicate::ack`             | follower applied + fsynced but the ack never left     |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct Armed {
    site: String,
    nth: u64,
    hits: AtomicU64,
}

fn armed() -> Option<&'static Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let spec = std::env::var("HDL_CRASH_AT").ok()?;
            // Site names contain `::`, so only a trailing `:<digits>`
            // counts as a hit index; `site` alone means the first hit.
            let (site, nth) = match spec.rsplit_once(':') {
                Some((site, n)) if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) => {
                    (site.to_string(), n.parse().ok()?)
                }
                _ => (spec, 1),
            };
            Some(Armed {
                site,
                nth,
                hits: AtomicU64::new(0),
            })
        })
        .as_ref()
}

/// Records a hit of `site`; returns `true` when this hit is the armed
/// n-th one and the caller must crash *now* (after any partial-write
/// staging it wants on disk first).
pub fn should_crash(site: &str) -> bool {
    match armed() {
        Some(a) if a.site == site => a.hits.fetch_add(1, Ordering::Relaxed) + 1 == a.nth,
        _ => false,
    }
}

/// Hits `site` and aborts the process if armed for this hit.
pub fn crash_point(site: &str) {
    if should_crash(site) {
        // Simulate power loss: no unwinding, no destructors, no flush.
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_crash() {
        // HDL_CRASH_AT is unset in the test environment; both entry
        // points must be inert.
        assert!(!should_crash("persist::wal_append"));
        crash_point("persist::wal_fsync");
    }
}
