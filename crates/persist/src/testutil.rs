//! Minimal self-cleaning temp directories for unit tests (the build has
//! no `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `TMPDIR/hdl-persist-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("hdl-persist-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
