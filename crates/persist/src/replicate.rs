//! Primary/follower replication: WAL log shipping over a byte-identical
//! mirror of the primary's log.
//!
//! The unit of replication is a *window* of committed WAL bytes,
//! addressed by `(epoch, offset)`:
//!
//! - the **primary** exposes a [`WalTap`] on each tenant's shared WAL.
//!   A shipper snapshots the tenant's `(epoch, committed)` position
//!   under the WAL lock, then reads `[offset..committed]` straight out
//!   of the log file — whole flushed frames only, since the committed
//!   watermark ([`WalWriter::committed`]) advances exclusively by whole
//!   mutation groups;
//! - the **follower** holds a [`Replica`]: the same on-disk layout as a
//!   primary tenant directory, built by appending shipped windows at
//!   identical offsets ([`WalWriter::append_raw`]) and fsyncing before
//!   acknowledging. Records are applied to the in-memory session through
//!   the *recovery* code path, so a follower's world is — by
//!   construction — the world crash recovery would rebuild from its own
//!   files.
//!
//! When the primary checkpoints, its WAL rotates to a new epoch and the
//! old file is deleted; a follower still inside the old epoch can no
//! longer be served windows. [`WalTap::plan_ship`] then returns the
//! current epoch's checkpoint image instead, the follower installs it
//! ([`Replica::install_checkpoint`]), and window shipping resumes from
//! the top of the new epoch's log. A follower claiming a position the
//! primary has never written (a diverged or forged log) is refused with
//! [`Ship::Diverged`]; the operator-visible fix is a primary checkpoint,
//! which forces the checkpoint-transfer path above.
//!
//! The safety invariant, per tenant: **acked ⊆ follower-state ⊆
//! submitted**. An ack is only sent after the follower fsynced the
//! bytes; the follower only ever holds byte prefixes of the primary's
//! committed log (never reordered, never invented); and everything in
//! that log was a client-submitted mutation. The two-process failover
//! harness in `tests/replication.rs` asserts exactly this across crash
//! sites.

use crate::checkpoint::{checkpoint_path, sync_dir, write_checkpoint};
use crate::codec::{decode_checkpoint, decode_record};
use crate::crashpoint;
use crate::group::SharedWal;
use crate::recover::{recover, RecoveryReport};
use crate::wal::{FsyncPolicy, WalWriter, MAX_RECORD_LEN, WAL_HEADER_LEN};
use hdl_base::{crc32, Error, Result};
use hdl_core::Session;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A replication position: checkpoint epoch plus byte offset into that
/// epoch's WAL file. Fresh worlds start at `(0, WAL_HEADER_LEN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Checkpoint epoch the offset refers to.
    pub epoch: u64,
    /// Byte offset into `wal-<epoch>.log` (≥ [`WAL_HEADER_LEN`]).
    pub offset: u64,
}

impl Position {
    /// The position of an empty epoch-0 world.
    pub fn start() -> Self {
        Position {
            epoch: 0,
            offset: WAL_HEADER_LEN,
        }
    }

    /// Whether a follower acked at `self` has durably replicated
    /// everything up to `at`. A later epoch always covers: the follower
    /// only reaches it through a checkpoint image that contains the
    /// whole earlier history.
    pub fn covers(&self, at: Position) -> bool {
        self.epoch > at.epoch || (self.epoch == at.epoch && self.offset >= at.offset)
    }
}

/// What the primary should send a follower at a given position.
#[derive(Debug)]
pub enum Ship {
    /// Committed log bytes starting exactly at the follower's offset.
    /// Empty when the follower is caught up (send a heartbeat instead).
    Window {
        /// Epoch the bytes belong to.
        epoch: u64,
        /// Offset of the first byte within that epoch's WAL.
        offset: u64,
        /// Whole-frame log bytes, `[offset..offset + bytes.len())`.
        bytes: Vec<u8>,
    },
    /// The follower is behind a WAL rotation; it must install this
    /// checkpoint image and resume windows at the top of `epoch`'s log.
    Checkpoint {
        /// Epoch of the image (the primary's current epoch).
        epoch: u64,
        /// Serialized checkpoint (already CRC-framed by the codec).
        image: Vec<u8>,
    },
    /// The follower claims a position ahead of anything the primary
    /// committed — its log is not a prefix of ours. Shipping anything
    /// would corrupt it; a primary-side checkpoint (raising the epoch)
    /// converts this into a clean checkpoint transfer.
    Diverged {
        /// The primary's current position, for the error report.
        primary: Position,
    },
}

/// Read-side tap on a primary tenant's WAL, detached from the session
/// lock: shipper threads read committed windows and checkpoint images
/// while the session keeps serving queries and mutations.
pub struct WalTap {
    shared: Arc<Mutex<SharedWal>>,
    dir: PathBuf,
}

impl WalTap {
    pub(crate) fn new(shared: Arc<Mutex<SharedWal>>, dir: PathBuf) -> Self {
        WalTap { shared, dir }
    }

    /// The primary's current `(epoch, committed)` position.
    pub fn position(&self) -> Position {
        let guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        Position {
            epoch: guard.epoch,
            offset: guard.writer.committed(),
        }
    }

    /// Plans the next shipment for a follower at `from`, reading at most
    /// `max_bytes` of log. See [`Ship`] for the three outcomes.
    ///
    /// The `(epoch, committed, path)` snapshot is taken under the WAL
    /// lock, but the file read happens outside it — the writer only ever
    /// appends, so bytes below `committed` are immutable. A checkpoint
    /// racing the read can delete the file out from under us; that
    /// surfaces as an I/O error the shipper retries, and the retry's
    /// snapshot sees the new epoch.
    pub fn plan_ship(&self, from: Position, max_bytes: u64) -> Result<Ship> {
        let (epoch, committed, path) = {
            let guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
            (
                guard.epoch,
                guard.writer.committed(),
                guard.writer.path().to_path_buf(),
            )
        };
        if from.epoch > epoch || (from.epoch == epoch && from.offset > committed) {
            return Ok(Ship::Diverged {
                primary: Position {
                    epoch,
                    offset: committed,
                },
            });
        }
        if from.epoch < epoch {
            // Rotation already deleted the follower's epoch; epoch ≥ 1
            // here, so the current checkpoint image always exists (it is
            // what the rotation published, and pruning spares it).
            let ckpt = checkpoint_path(&self.dir, epoch);
            let image = std::fs::read(&ckpt).map_err(|e| Error::io(ckpt.display(), e))?;
            return Ok(Ship::Checkpoint { epoch, image });
        }
        if from.offset < WAL_HEADER_LEN {
            return Err(Error::Invalid(format!(
                "replication offset {} is inside the WAL header",
                from.offset
            )));
        }
        let len = (committed - from.offset).min(max_bytes);
        let mut bytes = vec![0u8; len as usize];
        if len > 0 {
            let mut file = File::open(&path).map_err(|e| Error::io(path.display(), e))?;
            file.seek(SeekFrom::Start(from.offset))
                .and_then(|_| file.read_exact(&mut bytes))
                .map_err(|e| Error::io(path.display(), e))?;
        }
        Ok(Ship::Window {
            epoch,
            offset: from.offset,
            bytes,
        })
    }
}

/// Splits a shipped window into its frame payloads, verifying structure
/// and checksums. Unlike [`crate::wal::read_wal`] — where a torn tail is
/// an expected crash artifact — a window must parse *exactly*: the
/// primary only ships whole committed frames, so any leftover or
/// mismatch means the peer is not speaking the protocol, and nothing
/// from the window may be applied.
pub fn parse_frames(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let header = bytes
            .get(pos..pos + 8)
            .ok_or_else(|| Error::Invalid("replication window has a torn frame header".into()))?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Err(Error::Invalid(format!(
                "replication frame claims {len} bytes (limit {MAX_RECORD_LEN})"
            )));
        }
        let payload = bytes
            .get(pos + 8..pos + 8 + len as usize)
            .ok_or_else(|| Error::Invalid("replication window has a torn frame payload".into()))?;
        if crc32(payload) != crc {
            return Err(Error::Invalid(
                "replication frame failed its checksum".into(),
            ));
        }
        frames.push(payload);
        pos += 8 + len as usize;
    }
    Ok(frames)
}

/// Shared scoreboard of follower replication progress, per tenant ×
/// target, for synchronous (quorum-acknowledged) commits.
///
/// The shipper calls [`AckTracker::record`] with each follower ack it
/// receives; a committing session calls [`AckTracker::wait_quorum`]
/// with the position its batch reached locally and blocks — bounded by
/// a deadline — until enough targets' acked positions [`Position::covers`]
/// that point. The wait returns the count actually covering, so the
/// caller can degrade to a structured under-replication report instead
/// of hanging the commit window.
pub struct AckTracker {
    targets: usize,
    state: Mutex<BTreeMap<String, Vec<Option<Position>>>>,
    cond: Condvar,
}

impl AckTracker {
    /// A tracker for `targets` replication targets (indexed `0..targets`).
    pub fn new(targets: usize) -> Self {
        AckTracker {
            targets,
            state: Mutex::new(BTreeMap::new()),
            cond: Condvar::new(),
        }
    }

    /// How many replication targets this tracker scores.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Records that target `target` acked `tenant` up to `pos`
    /// (monotonic: an older ack never regresses the scoreboard).
    pub fn record(&self, tenant: &str, target: usize, pos: Position) {
        if target >= self.targets {
            return;
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let slots = state
            .entry(tenant.to_string())
            .or_insert_with(|| vec![None; self.targets]);
        match slots[target] {
            Some(have) if have.covers(pos) => {}
            _ => {
                slots[target] = Some(pos);
                self.cond.notify_all();
            }
        }
    }

    /// Forgets a target's progress for every tenant — called when its
    /// connection drops, so a quorum never counts a dead follower.
    pub fn forget_target(&self, target: usize) {
        if target >= self.targets {
            return;
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        for slots in state.values_mut() {
            slots[target] = None;
        }
    }

    /// How many targets currently cover `at` for `tenant`.
    pub fn covering(&self, tenant: &str, at: Position) -> usize {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state
            .get(tenant)
            .map(|slots| {
                slots
                    .iter()
                    .filter(|p| p.is_some_and(|p| p.covers(at)))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Blocks until at least `need` targets cover `at` for `tenant`, or
    /// `deadline` elapses. Returns the number of targets covering at
    /// return time (`>= need` on success, the shortfall count on
    /// timeout).
    pub fn wait_quorum(
        &self,
        tenant: &str,
        at: Position,
        need: usize,
        deadline: Duration,
    ) -> usize {
        let need = need.min(self.targets);
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let covering = state
                .get(tenant)
                .map(|slots| {
                    slots
                        .iter()
                        .filter(|p| p.is_some_and(|p| p.covers(at)))
                        .count()
                })
                .unwrap_or(0);
            if covering >= need {
                return covering;
            }
            let elapsed = started.elapsed();
            if elapsed >= deadline {
                return covering;
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(state, deadline - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() {
                // Loop once more to pick up a racing final record().
                continue;
            }
        }
    }
}

/// A follower's mirror of one tenant: the primary's on-disk layout,
/// grown by appending shipped windows, plus the live session replaying
/// them for read-only queries.
///
/// Opening a replica *is* crash recovery — whatever prefix of the log
/// survived the last run is rebuilt, and [`Replica::position`] tells the
/// primary where to resume. Promotion needs no data movement at all:
/// drop the replica and open the directory as a normal durable session.
pub struct Replica {
    dir: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    writer: WalWriter,
    session: Session,
    report: RecoveryReport,
    records_applied: u64,
}

impl Replica {
    /// Opens (recovering if needed) a replica rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self> {
        let dir = dir.into();
        let recovered = recover(&dir, policy)?;
        Ok(Replica {
            dir,
            policy,
            epoch: recovered.epoch,
            writer: recovered.writer,
            session: recovered.session,
            report: recovered.report,
            records_applied: 0,
        })
    }

    /// Where the primary should resume shipping.
    pub fn position(&self) -> Position {
        Position {
            epoch: self.epoch,
            offset: self.writer.committed(),
        }
    }

    /// The replayed session, for read-only query serving.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable session access — for the query service's snapshot
    /// machinery only; replication owns all real mutations.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// What recovery found when the replica opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Records applied since this replica was opened (not counting the
    /// recovery replay of earlier runs' windows).
    pub fn records_applied(&self) -> u64 {
        self.records_applied
    }

    /// Lands one shipped window: verify it, fsync it into the local log
    /// at the exact shipped offset, then apply each record to the
    /// session through the recovery path. Returns the number of records
    /// applied. The caller may ack `(epoch, offset + bytes.len())` to
    /// the primary once this returns `Ok` — the bytes are durable.
    ///
    /// A position mismatch is an error carrying the replica's actual
    /// position in its message; the primary re-negotiates rather than
    /// guessing. A validation failure applies nothing. A failure *after*
    /// the fsync (a record the session rejects) leaves disk ahead of
    /// memory — the caller must drop and reopen the replica, which
    /// replays the durable prefix and truncates whatever broke.
    pub fn apply_window(&mut self, epoch: u64, offset: u64, bytes: &[u8]) -> Result<u64> {
        hdl_base::failpoint!("replicate::apply");
        let at = self.position();
        if epoch != at.epoch || offset != at.offset {
            return Err(Error::Invalid(format!(
                "replication window at {epoch}:{offset} but replica is at {}:{}",
                at.epoch, at.offset
            )));
        }
        if bytes.is_empty() {
            return Ok(0);
        }
        let frames = parse_frames(bytes)?;
        // Crash window: the bytes were received but never written — the
        // primary re-ships them after the follower restarts and
        // re-negotiates its (unchanged) position.
        crashpoint::crash_point("replicate::apply");
        self.writer.append_raw(bytes)?;
        let mut applied = 0u64;
        for payload in frames {
            let record = decode_record(payload, self.session.symbols())?;
            crate::recover::apply(&mut self.session, record)?;
            applied += 1;
        }
        self.records_applied += applied;
        Ok(applied)
    }

    /// Installs a shipped checkpoint image, replacing the replica's
    /// whole world: publish the image exactly as the primary would, then
    /// rebuild through recovery (which also sweeps the stale epoch's
    /// WAL). Windows resume at the top of the new epoch's log.
    pub fn install_checkpoint(&mut self, epoch: u64, image: &[u8]) -> Result<()> {
        let state = decode_checkpoint(image)?;
        if state.epoch != epoch {
            return Err(Error::Invalid(format!(
                "checkpoint image claims epoch {} but was shipped as {epoch}",
                state.epoch
            )));
        }
        if epoch <= self.epoch {
            return Err(Error::Invalid(format!(
                "checkpoint epoch {epoch} does not advance the replica (at {})",
                self.epoch
            )));
        }
        write_checkpoint(&self.dir, epoch, image)?;
        sync_dir(&self.dir)?;
        let recovered = recover(&self.dir, self.policy)?;
        if recovered.epoch != epoch {
            return Err(Error::Invalid(format!(
                "recovery selected epoch {} after installing {epoch}",
                recovered.epoch
            )));
        }
        self.epoch = recovered.epoch;
        self.writer = recovered.writer;
        self.session = recovered.session;
        self.report = recovered.report;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::wal_path;
    use crate::session::DurableSession;
    use crate::testutil::TempDir;
    use crate::wal::read_wal;
    use hdl_base::GroundAtom;

    const PROGRAM: &str = "edge(a, b). edge(b, c).\n\
        tc(X, Y) :- edge(X, Y).\n\
        tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

    fn parse_fact(session: &mut Session, text: &str) -> GroundAtom {
        let rb = hdl_core::parse_program(text, session.symbols_mut()).unwrap();
        let (_, mut facts) = hdl_core::split_facts(rb);
        facts.pop().unwrap()
    }

    /// Drives `replica` to the primary's current position via the tap,
    /// exactly like a shipper thread would.
    fn catch_up(tap: &WalTap, replica: &mut Replica) {
        loop {
            match tap.plan_ship(replica.position(), 1 << 20).unwrap() {
                Ship::Window { bytes, .. } if bytes.is_empty() => return,
                Ship::Window {
                    epoch,
                    offset,
                    bytes,
                } => {
                    replica.apply_window(epoch, offset, &bytes).unwrap();
                }
                Ship::Checkpoint { epoch, image } => {
                    replica.install_checkpoint(epoch, &image).unwrap();
                }
                Ship::Diverged { primary } => panic!("diverged vs {primary:?}"),
            }
        }
    }

    #[test]
    fn windows_mirror_the_primary_byte_for_byte() {
        let p_dir = TempDir::new("rep-primary");
        let f_dir = TempDir::new("rep-follower");
        let mut primary = DurableSession::open(p_dir.path(), FsyncPolicy::Always).unwrap();
        let tap = primary.wal_tap().unwrap();
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();

        primary.load(PROGRAM).unwrap();
        let f = parse_fact(&mut primary, "edge(c, d).");
        primary.assert_fact(f).unwrap();
        catch_up(&tap, &mut replica);

        assert_eq!(replica.position(), tap.position());
        assert!(replica.session_mut().ask("?- tc(a, d).").unwrap());

        // The logs are byte-identical up to the follower watermark.
        let p_scan = read_wal(&wal_path(p_dir.path(), 0)).unwrap();
        let f_scan = read_wal(&wal_path(f_dir.path(), 0)).unwrap();
        assert_eq!(p_scan.records.len(), f_scan.records.len());
        for (a, b) in p_scan.records.iter().zip(&f_scan.records) {
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn rotation_ships_a_checkpoint_and_windows_resume() {
        let p_dir = TempDir::new("rep-rotate-p");
        let f_dir = TempDir::new("rep-rotate-f");
        let mut primary = DurableSession::open(p_dir.path(), FsyncPolicy::Always).unwrap();
        let tap = primary.wal_tap().unwrap();
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();

        primary.load(PROGRAM).unwrap();
        assert_eq!(primary.checkpoint().unwrap(), 1);
        let f = parse_fact(&mut primary, "edge(c, e).");
        primary.assert_fact(f).unwrap();

        // The replica is still at epoch 0: the plan must be an image.
        assert!(matches!(
            tap.plan_ship(replica.position(), 1 << 20).unwrap(),
            Ship::Checkpoint { epoch: 1, .. }
        ));
        catch_up(&tap, &mut replica);
        assert_eq!(replica.position(), tap.position());
        assert_eq!(replica.position().epoch, 1);
        assert!(replica.session_mut().ask("?- tc(b, e).").unwrap());

        // Post-catch-up mutations flow as plain windows again.
        let f = parse_fact(&mut primary, "edge(e, f).");
        primary.assert_fact(f).unwrap();
        catch_up(&tap, &mut replica);
        assert!(replica.session_mut().ask("?- tc(a, f).").unwrap());
    }

    #[test]
    fn replica_survives_reopen_and_resumes_mid_epoch() {
        let p_dir = TempDir::new("rep-reopen-p");
        let f_dir = TempDir::new("rep-reopen-f");
        let mut primary = DurableSession::open(p_dir.path(), FsyncPolicy::Always).unwrap();
        let tap = primary.wal_tap().unwrap();

        primary.load(PROGRAM).unwrap();
        {
            let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();
            catch_up(&tap, &mut replica);
        } // dropped: simulates a follower restart

        let f = parse_fact(&mut primary, "edge(c, d).");
        primary.assert_fact(f).unwrap();
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        assert!(replica.recovery_report().records_replayed > 0);
        catch_up(&tap, &mut replica);
        assert_eq!(replica.position(), tap.position());
        assert!(replica.session_mut().ask("?- tc(a, d).").unwrap());
    }

    #[test]
    fn promotion_is_a_plain_durable_open() {
        let p_dir = TempDir::new("rep-promote-p");
        let f_dir = TempDir::new("rep-promote-f");
        let mut primary = DurableSession::open(p_dir.path(), FsyncPolicy::Always).unwrap();
        let tap = primary.wal_tap().unwrap();
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        primary.load(PROGRAM).unwrap();
        catch_up(&tap, &mut replica);
        drop(replica);

        let mut promoted = DurableSession::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        assert!(promoted.ask("?- tc(a, c).").unwrap());
        // The promoted world accepts writes and keeps its own log.
        let f = parse_fact(&mut promoted, "edge(c, z).");
        promoted.assert_fact(f).unwrap();
        assert!(promoted.ask("?- tc(a, z).").unwrap());
    }

    #[test]
    fn diverged_followers_are_refused_then_healed_by_checkpoint() {
        let p_dir = TempDir::new("rep-diverge-p");
        let f_dir = TempDir::new("rep-diverge-f");
        let mut primary = DurableSession::open(p_dir.path(), FsyncPolicy::Always).unwrap();
        let tap = primary.wal_tap().unwrap();
        primary.load(PROGRAM).unwrap();

        // A follower that wrote its own history claims a position past
        // anything the primary committed.
        let mut rogue = DurableSession::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        rogue.load(PROGRAM).unwrap();
        let f = parse_fact(&mut rogue, "edge(x1, x2).");
        rogue.assert_fact(f).unwrap();
        drop(rogue);
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        assert!(replica.position().offset > tap.position().offset);
        assert!(matches!(
            tap.plan_ship(replica.position(), 1 << 20).unwrap(),
            Ship::Diverged { .. }
        ));

        // The operator remedy: checkpoint the primary, forcing the
        // follower through a full image install.
        primary.checkpoint().unwrap();
        catch_up(&tap, &mut replica);
        assert_eq!(replica.position(), tap.position());
        assert!(replica.session_mut().ask("?- tc(a, c).").unwrap());
        assert!(!replica.session_mut().ask("?- edge(x1, x2).").unwrap());
    }

    #[test]
    fn windows_with_garbage_are_rejected_without_side_effects() {
        let f_dir = TempDir::new("rep-garbage");
        let mut replica = Replica::open(f_dir.path(), FsyncPolicy::Always).unwrap();
        let at = replica.position();

        // Torn header, torn payload, bad checksum, absurd length.
        for bytes in [
            &b"\x05\x00\x00"[..],
            &[5, 0, 0, 0, 1, 2, 3, 4, 9, 9][..],
            &{
                let mut v = Vec::new();
                v.extend_from_slice(&2u32.to_le_bytes());
                v.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
                v.extend_from_slice(b"ok");
                v
            }[..],
            &{
                let mut v = Vec::new();
                v.extend_from_slice(&u32::MAX.to_le_bytes());
                v.extend_from_slice(&[0; 4]);
                v
            }[..],
        ] {
            assert!(replica.apply_window(at.epoch, at.offset, bytes).is_err());
            assert_eq!(replica.position(), at, "nothing may land");
        }

        // Position mismatches are refused before any validation.
        assert!(replica.apply_window(at.epoch + 1, at.offset, &[]).is_err());
        assert!(replica.apply_window(at.epoch, at.offset + 8, &[]).is_err());
    }

    #[test]
    fn positions_cover_across_epochs() {
        let at = Position {
            epoch: 2,
            offset: 100,
        };
        assert!(at.covers(at));
        assert!(Position {
            epoch: 2,
            offset: 101
        }
        .covers(at));
        assert!(Position {
            epoch: 3,
            offset: WAL_HEADER_LEN
        }
        .covers(at));
        assert!(!Position {
            epoch: 2,
            offset: 99
        }
        .covers(at));
        assert!(!Position {
            epoch: 1,
            offset: 999
        }
        .covers(at));
    }

    #[test]
    fn ack_tracker_quorum_wait_and_degrade() {
        let tracker = Arc::new(AckTracker::new(2));
        let at = Position {
            epoch: 0,
            offset: 64,
        };

        // Nothing recorded: a bounded wait degrades with the count seen.
        assert_eq!(
            tracker.wait_quorum("t", at, 1, Duration::from_millis(20)),
            0
        );

        // One target acks past the mark; quorum of 1 resolves, 2 degrades.
        tracker.record(
            "t",
            0,
            Position {
                epoch: 0,
                offset: 80,
            },
        );
        assert_eq!(tracker.covering("t", at), 1);
        assert_eq!(
            tracker.wait_quorum("t", at, 1, Duration::from_millis(20)),
            1
        );
        assert_eq!(
            tracker.wait_quorum("t", at, 2, Duration::from_millis(20)),
            1
        );

        // A racing ack from another thread wakes a blocked waiter.
        let waiter = {
            let tracker = Arc::clone(&tracker);
            std::thread::spawn(move || tracker.wait_quorum("t", at, 2, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(10));
        tracker.record(
            "t",
            1,
            Position {
                epoch: 1,
                offset: 16,
            },
        );
        assert_eq!(waiter.join().unwrap(), 2);

        // Stale acks never regress; a dropped target is forgotten.
        tracker.record(
            "t",
            0,
            Position {
                epoch: 0,
                offset: 16,
            },
        );
        assert_eq!(tracker.covering("t", at), 2);
        tracker.forget_target(0);
        assert_eq!(tracker.covering("t", at), 1);
        // Out-of-range target indexes are ignored, not panics.
        tracker.record("t", 9, at);
        tracker.forget_target(9);
    }
}
