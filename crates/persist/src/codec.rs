//! Binary codecs for everything the durability layer puts on disk.
//!
//! Builds on the primitive `Encoder`/`Decoder` in `hdl_base::serialize`
//! (which already covers symbols, ground atoms, databases, and the
//! overlay DAG) and adds the rule AST, the WAL record set, and the
//! checkpoint image. All decoders are *total*: arbitrary bytes produce
//! `Err(Error::Invalid)` — never a panic and never an unvalidated
//! symbol or absurd allocation — because the WAL tail after a crash is
//! untrusted input by construction.

use hdl_base::serialize::{
    decode_ground_atom, decode_symbol, decode_symbols, encode_ground_atom, encode_symbols,
};
use hdl_base::{crc32, Atom, DbStore, Decoder, Encoder, Error, GroundAtom, Result, SymbolTable};
use hdl_base::{Database, Term, Var};
use hdl_core::{HypRule, Premise, Rulebase};

/// Upper bound on a decoded variable index. `num_vars` sizes per-rule
/// binding buffers, so a corrupt huge index would turn into a huge
/// allocation downstream even though the bytes passed their CRC.
const MAX_VAR_INDEX: u32 = 1 << 20;

// ---------------------------------------------------------------------
// Rule AST
// ---------------------------------------------------------------------

fn encode_term(enc: &mut Encoder, term: Term) {
    match term {
        Term::Const(c) => {
            enc.u8(0);
            enc.u32(c.0);
        }
        Term::Var(v) => {
            enc.u8(1);
            enc.u32(v.0);
        }
    }
}

fn decode_term(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Term> {
    match dec.u8()? {
        0 => Ok(Term::Const(decode_symbol(dec, symbols)?)),
        1 => {
            let idx = dec.u32()?;
            if idx > MAX_VAR_INDEX {
                return Err(Error::Invalid(format!("variable index {idx} out of range")));
            }
            Ok(Term::Var(Var(idx)))
        }
        tag => Err(Error::Invalid(format!("unknown term tag {tag}"))),
    }
}

fn encode_atom(enc: &mut Encoder, atom: &Atom) {
    enc.u32(atom.pred.0);
    enc.u32(atom.args.len() as u32);
    for &t in &atom.args {
        encode_term(enc, t);
    }
}

fn decode_atom(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Atom> {
    let pred = decode_symbol(dec, symbols)?;
    let arity = dec.len_prefix(5)?;
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(decode_term(dec, symbols)?);
    }
    Ok(Atom::new(pred, args))
}

fn encode_premise(enc: &mut Encoder, premise: &Premise) {
    match premise {
        Premise::Atom(a) => {
            enc.u8(0);
            encode_atom(enc, a);
        }
        Premise::Neg(a) => {
            enc.u8(1);
            encode_atom(enc, a);
        }
        Premise::Hyp { goal, adds, dels } => {
            // Tag 2 is the historical adds-only layout; emitting it when
            // there are no deletions keeps positive-only programs
            // byte-identical to logs written before `del:` existed.
            if dels.is_empty() {
                enc.u8(2);
                encode_atom(enc, goal);
                enc.u32(adds.len() as u32);
                for a in adds {
                    encode_atom(enc, a);
                }
            } else {
                enc.u8(3);
                encode_atom(enc, goal);
                enc.u32(adds.len() as u32);
                for a in adds {
                    encode_atom(enc, a);
                }
                enc.u32(dels.len() as u32);
                for a in dels {
                    encode_atom(enc, a);
                }
            }
        }
    }
}

fn decode_premise(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Premise> {
    match dec.u8()? {
        0 => Ok(Premise::Atom(decode_atom(dec, symbols)?)),
        1 => Ok(Premise::Neg(decode_atom(dec, symbols)?)),
        2 => {
            let goal = decode_atom(dec, symbols)?;
            let n = dec.len_prefix(8)?;
            if n == 0 {
                return Err(Error::Invalid(
                    "hypothetical premise with empty add list".into(),
                ));
            }
            let mut adds = Vec::with_capacity(n);
            for _ in 0..n {
                adds.push(decode_atom(dec, symbols)?);
            }
            Ok(Premise::Hyp {
                goal,
                adds,
                dels: Vec::new(),
            })
        }
        3 => {
            let goal = decode_atom(dec, symbols)?;
            let na = dec.len_prefix(8)?;
            let mut adds = Vec::with_capacity(na);
            for _ in 0..na {
                adds.push(decode_atom(dec, symbols)?);
            }
            let nd = dec.len_prefix(8)?;
            if nd == 0 {
                // Tag 3 exists only for del-carrying premises; an empty
                // del list would have been written as tag 2.
                return Err(Error::Invalid(
                    "hypothetical premise with empty del list".into(),
                ));
            }
            let mut dels = Vec::with_capacity(nd);
            for _ in 0..nd {
                dels.push(decode_atom(dec, symbols)?);
            }
            Ok(Premise::Hyp { goal, adds, dels })
        }
        tag => Err(Error::Invalid(format!("unknown premise tag {tag}"))),
    }
}

/// Encodes one rule (head, premises; `num_vars` is derived, not stored).
pub fn encode_rule(enc: &mut Encoder, rule: &HypRule) {
    encode_atom(enc, &rule.head);
    enc.u32(rule.premises.len() as u32);
    for p in &rule.premises {
        encode_premise(enc, p);
    }
}

/// Decodes one rule; `num_vars` is recomputed by [`HypRule::new`] so it
/// can never disagree with the premises.
pub fn decode_rule(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<HypRule> {
    let head = decode_atom(dec, symbols)?;
    let n = dec.len_prefix(6)?;
    let mut premises = Vec::with_capacity(n);
    for _ in 0..n {
        premises.push(decode_premise(dec, symbols)?);
    }
    Ok(HypRule::new(head, premises))
}

/// Encodes a rulebase in source order.
pub fn encode_rulebase(enc: &mut Encoder, rulebase: &Rulebase) {
    enc.u32(rulebase.len() as u32);
    for rule in rulebase.iter() {
        encode_rule(enc, rule);
    }
}

/// Decodes a rulebase written by [`encode_rulebase`].
pub fn decode_rulebase(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Rulebase> {
    let n = dec.len_prefix(10)?;
    let mut rb = Rulebase::new();
    for _ in 0..n {
        rb.push(decode_rule(dec, symbols)?);
    }
    Ok(rb)
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One durable session mutation, as replayed from the log.
///
/// Records are decoded against the symbol table *as of that point in the
/// log*: a `Symbols` record extends the table, and every later record may
/// reference the new ids. This mirrors how the live session interns
/// before mutating, so replay reproduces identical dense symbol ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Names interned since the last record, in interning order.
    Symbols(Vec<String>),
    /// Rules + base facts committed atomically by one program load (or a
    /// single fact assertion).
    Program {
        /// Rules joining the rulebase.
        rules: Vec<HypRule>,
        /// Ground facts joining the base database.
        facts: Vec<GroundAtom>,
    },
    /// One base fact retracted.
    Retract(GroundAtom),
    /// An assumption frame pushed.
    Assume(Vec<GroundAtom>),
    /// The top assumption frame popped.
    PopAssumption,
}

const TAG_SYMBOLS: u8 = 0;
const TAG_PROGRAM: u8 = 1;
const TAG_RETRACT: u8 = 2;
const TAG_ASSUME: u8 = 3;
const TAG_POP: u8 = 4;

/// Encodes a `Symbols` record payload from borrowed names.
pub fn encode_symbols_record(names: &[&str]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(TAG_SYMBOLS);
    enc.u32(names.len() as u32);
    for name in names {
        enc.str(name);
    }
    enc.finish()
}

/// Encodes a `Program` record payload from borrowed parts.
pub fn encode_program_record(rules: &[HypRule], facts: &[GroundAtom]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(TAG_PROGRAM);
    enc.u32(rules.len() as u32);
    for r in rules {
        encode_rule(&mut enc, r);
    }
    enc.u32(facts.len() as u32);
    for f in facts {
        encode_ground_atom(&mut enc, f);
    }
    enc.finish()
}

/// Encodes a `Retract` record payload.
pub fn encode_retract_record(fact: &GroundAtom) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(TAG_RETRACT);
    encode_ground_atom(&mut enc, fact);
    enc.finish()
}

/// Encodes an `Assume` record payload.
pub fn encode_assume_record(facts: &[GroundAtom]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(TAG_ASSUME);
    enc.u32(facts.len() as u32);
    for f in facts {
        encode_ground_atom(&mut enc, f);
    }
    enc.finish()
}

/// Encodes a `PopAssumption` record payload.
pub fn encode_pop_record() -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(TAG_POP);
    enc.finish()
}

fn decode_fact_list(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Vec<GroundAtom>> {
    let n = dec.len_prefix(8)?;
    let mut facts = Vec::with_capacity(n);
    for _ in 0..n {
        facts.push(decode_ground_atom(dec, symbols)?);
    }
    Ok(facts)
}

/// Decodes one WAL record payload against the current symbol table.
///
/// Trailing garbage after the record body is corruption (every payload
/// is framed exactly), so it is rejected rather than ignored.
pub fn decode_record(payload: &[u8], symbols: &SymbolTable) -> Result<WalRecord> {
    let mut dec = Decoder::new(payload);
    let record = match dec.u8()? {
        TAG_SYMBOLS => {
            let n = dec.len_prefix(1)?;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(dec.str()?);
            }
            WalRecord::Symbols(names)
        }
        TAG_PROGRAM => {
            let nrules = dec.len_prefix(10)?;
            let mut rules = Vec::with_capacity(nrules);
            for _ in 0..nrules {
                rules.push(decode_rule(&mut dec, symbols)?);
            }
            let facts = decode_fact_list(&mut dec, symbols)?;
            WalRecord::Program { rules, facts }
        }
        TAG_RETRACT => WalRecord::Retract(decode_ground_atom(&mut dec, symbols)?),
        TAG_ASSUME => WalRecord::Assume(decode_fact_list(&mut dec, symbols)?),
        TAG_POP => WalRecord::PopAssumption,
        tag => return Err(Error::Invalid(format!("unknown WAL record tag {tag}"))),
    };
    if !dec.is_done() {
        return Err(Error::Invalid(format!(
            "{} trailing bytes after WAL record",
            dec.remaining()
        )));
    }
    Ok(record)
}

// ---------------------------------------------------------------------
// Checkpoint image
// ---------------------------------------------------------------------

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"HDLCKPT1";
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// Everything a checkpoint restores: the full session state plus the
/// snapshot-epoch watermark active when it was taken.
#[derive(Debug)]
pub struct CheckpointState {
    /// The checkpoint's own epoch (WAL files are named after it).
    pub epoch: u64,
    /// Snapshot-epoch watermark: recovery advances the global snapshot
    /// counter past this so restored processes never reuse an epoch.
    pub watermark: u64,
    /// Interned symbol table, in interning order.
    pub symbols: SymbolTable,
    /// The rulebase, in source order.
    pub rulebase: Rulebase,
    /// The base database.
    pub base: Database,
    /// Assumption frames, bottom-up.
    pub frames: Vec<Vec<GroundAtom>>,
}

/// Serializes a full checkpoint image, including magic and CRC trailer.
///
/// The base database and assumption frames are stored as a chain in a
/// canonical overlay DAG (`DbStore::encode_dag`): the base interns as the
/// root and each frame extends its predecessor, so parents precede deltas
/// and shared prefixes are stored once. Because the store canonicalizes,
/// a frame that adds nothing new collapses onto its predecessor's node;
/// the chain-ordinal list after the DAG keeps one entry per frame anyway,
/// so such frames restore as (correctly) empty.
pub fn encode_checkpoint(
    epoch: u64,
    watermark: u64,
    symbols: &SymbolTable,
    rulebase: &Rulebase,
    base: &Database,
    frames: &[Vec<GroundAtom>],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u32(CKPT_VERSION);
    enc.u64(epoch);
    enc.u64(watermark);
    encode_symbols(&mut enc, symbols);
    encode_rulebase(&mut enc, rulebase);

    let mut store = DbStore::new();
    let mut chain = vec![store.intern_database(base)];
    for frame in frames {
        let ids: Vec<_> = frame.iter().map(|f| store.intern_fact(f.clone())).collect();
        let prev = *chain.last().expect("chain has a root");
        chain.push(store.extend(prev, &ids));
    }
    let ordered = store.encode_dag(&mut enc);
    enc.u32(chain.len() as u32);
    for id in &chain {
        let ordinal = ordered
            .iter()
            .position(|kept| kept == id)
            .expect("chain nodes are never derived, so encode_dag keeps them");
        enc.u32(ordinal as u32);
    }

    let payload = enc.finish();
    let mut bytes = Vec::with_capacity(CKPT_MAGIC.len() + payload.len() + 4);
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes
}

/// Decodes and verifies a checkpoint image (magic, CRC, then structure).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointState> {
    if bytes.len() < CKPT_MAGIC.len() + 4 || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(Error::Invalid("not a checkpoint file".into()));
    }
    let payload = &bytes[CKPT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(Error::Invalid("checkpoint checksum mismatch".into()));
    }

    let mut dec = Decoder::new(payload);
    let version = dec.u32()?;
    if version != CKPT_VERSION {
        return Err(Error::Invalid(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let epoch = dec.u64()?;
    let watermark = dec.u64()?;
    let symbols = decode_symbols(&mut dec)?;
    let rulebase = decode_rulebase(&mut dec, &symbols)?;

    let mut store = DbStore::new();
    let ordered = store.decode_dag(&mut dec, &symbols)?;
    let chain_len = dec.len_prefix(4)?;
    if chain_len == 0 {
        return Err(Error::Invalid("checkpoint chain is empty".into()));
    }
    let mut chain = Vec::with_capacity(chain_len);
    for _ in 0..chain_len {
        let ordinal = dec.u32()? as usize;
        let id = *ordered
            .get(ordinal)
            .ok_or_else(|| Error::Invalid(format!("chain ordinal {ordinal} out of range")))?;
        chain.push(id);
    }
    if !dec.is_done() {
        return Err(Error::Invalid("trailing bytes after checkpoint".into()));
    }

    let base = store.to_database(chain[0]);
    let mut frames = Vec::with_capacity(chain_len - 1);
    for w in chain.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        let frame: Vec<GroundAtom> = store
            .iter_fact_ids(cur)
            .filter(|&fid| !store.contains(prev, fid))
            .map(|fid| store.facts().fact(fid).clone())
            .collect();
        frames.push(frame);
    }

    Ok(CheckpointState {
        epoch,
        watermark,
        symbols,
        rulebase,
        base,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_core::parse_program;

    fn sample() -> (SymbolTable, Rulebase, Database, Vec<Vec<GroundAtom>>) {
        let mut symbols = SymbolTable::new();
        let program = parse_program(
            "edge(a, b). edge(b, c).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
             blocked(X) :- ~tc(X, c).\n\
             opens(X) :- tc(a, c)[add: edge(X, a), edge(c, X)].\n\
             cut(X) :- blocked(X)[del: edge(a, b)].\n\
             swap(X) :- tc(X, c)[add: edge(X, a), del: edge(b, c)].",
            &mut symbols,
        )
        .unwrap();
        let (rules, facts) = hdl_core::split_facts(program);
        let mut base = Database::new();
        for f in &facts {
            base.insert(f.clone());
        }
        let d = symbols.intern("d");
        let e = symbols.intern("e");
        let edge = symbols.lookup("edge").unwrap();
        let frames = vec![
            vec![GroundAtom::new(edge, vec![d, e])],
            vec![], // deliberately empty frame
            vec![GroundAtom::new(edge, vec![e, d])],
        ];
        (symbols, rules, base, frames)
    }

    #[test]
    fn rulebase_roundtrips_exactly() {
        let (symbols, rules, _, _) = sample();
        let mut enc = Encoder::new();
        encode_rulebase(&mut enc, &rules);
        let bytes = enc.finish();
        let back = decode_rulebase(&mut Decoder::new(&bytes), &symbols).unwrap();
        assert_eq!(back, rules);
    }

    #[test]
    fn wal_records_roundtrip() {
        let (symbols, rules, base, _) = sample();
        let facts: Vec<GroundAtom> = base.iter_facts().collect();

        let payload = encode_program_record(&rules.rules, &facts);
        match decode_record(&payload, &symbols).unwrap() {
            WalRecord::Program { rules: r, facts: f } => {
                assert_eq!(r, rules.rules);
                assert_eq!(f, facts);
            }
            other => panic!("wrong record: {other:?}"),
        }

        let payload = encode_symbols_record(&["alpha", "beta"]);
        assert_eq!(
            decode_record(&payload, &symbols).unwrap(),
            WalRecord::Symbols(vec!["alpha".into(), "beta".into()])
        );

        let payload = encode_retract_record(&facts[0]);
        assert_eq!(
            decode_record(&payload, &symbols).unwrap(),
            WalRecord::Retract(facts[0].clone())
        );

        let payload = encode_assume_record(&facts);
        assert_eq!(
            decode_record(&payload, &symbols).unwrap(),
            WalRecord::Assume(facts.clone())
        );

        assert_eq!(
            decode_record(&encode_pop_record(), &symbols).unwrap(),
            WalRecord::PopAssumption
        );
    }

    #[test]
    fn record_decode_rejects_corruption_without_panicking() {
        let (symbols, rules, base, _) = sample();
        let facts: Vec<GroundAtom> = base.iter_facts().collect();
        let payload = encode_program_record(&rules.rules, &facts);
        // Every truncation must be an error, never a panic.
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut], &symbols).is_err());
        }
        // Unknown tag.
        assert!(decode_record(&[99], &symbols).is_err());
        // Trailing garbage.
        let mut long = encode_pop_record();
        long.push(0);
        assert!(decode_record(&long, &symbols).is_err());
        // Symbol id out of range.
        let empty = SymbolTable::new();
        assert!(decode_record(&encode_retract_record(&facts[0]), &empty).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_base_and_frames() {
        let (symbols, rules, base, frames) = sample();
        let bytes = encode_checkpoint(7, 42, &symbols, &rules, &base, &frames);
        let state = decode_checkpoint(&bytes).unwrap();
        assert_eq!(state.epoch, 7);
        assert_eq!(state.watermark, 42);
        assert_eq!(state.symbols.len(), symbols.len());
        assert_eq!(state.rulebase, rules);
        assert_eq!(state.base.len(), base.len());
        let mut want: Vec<GroundAtom> = base.iter_facts().collect();
        let mut got: Vec<GroundAtom> = state.base.iter_facts().collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
        assert_eq!(state.frames.len(), frames.len());
        for (got, want) in state.frames.iter().zip(frames.iter()) {
            let mut got = got.clone();
            let mut want = want.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn checkpoint_rejects_bitflips_and_truncation() {
        let (symbols, rules, base, frames) = sample();
        let bytes = encode_checkpoint(1, 1, &symbols, &rules, &base, &frames);
        assert!(decode_checkpoint(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_checkpoint(b"HDLCKPT1").is_err());
        assert!(decode_checkpoint(b"").is_err());
        for i in (8..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_checkpoint(&bad).is_err(), "bitflip at {i} accepted");
        }
    }
}
