//! A small library of concrete machines for tests, examples and the E6
//! encoding experiments.
//!
//! All machines use the binary alphabet `{0 = blank, 1}` unless noted.
//! They are deliberately tiny: the §5.1 construction is uniform in the
//! machine, so exercising every rule family (accept, transition, oracle
//! invocation, frame axiom) on small machines validates the compiler
//! without astronomically large rulebases.

use crate::machine::{Action, Machine, Move, OracleProtocol, State, Sym};

/// Blank/zero symbol.
pub const S0: Sym = Sym(0);
/// One symbol.
pub const S1: Sym = Sym(1);

/// Accepts immediately (its start state is accepting).
pub fn always_accept() -> Machine {
    let mut m = Machine::new("always", 1, 2);
    m.accepting.push(State(0));
    m
}

/// Never accepts (no accepting states; scans right forever).
pub fn never_accept() -> Machine {
    let mut m = Machine::new("never", 1, 2);
    for s in [S0, S1] {
        m.add_transition(
            State(0),
            s,
            Action {
                write: s,
                work_move: Move::Right,
                oracle_write: None,
                next: State(0),
            },
        );
    }
    m
}

/// Accepts iff the input contains a `1`: scan right, accept on reading 1.
pub fn contains_one() -> Machine {
    let mut m = Machine::new("contains_one", 2, 2);
    m.accepting.push(State(1));
    m.add_transition(
        State(0),
        S0,
        Action {
            write: S0,
            work_move: Move::Right,
            oracle_write: None,
            next: State(0),
        },
    );
    m.add_transition(
        State(0),
        S1,
        Action {
            write: S1,
            work_move: Move::Right,
            oracle_write: None,
            next: State(1),
        },
    );
    m
}

/// Accepts iff the input holds an even number of `1`s (parity flip-flop).
///
/// The scan must reach the end of the used tape; since the work tape is
/// blank-padded, "end" is detected by convention: the machine runs until
/// it steps onto a blank *after* having started — it accepts by entering
/// the accept state on reading a blank in the even state.
pub fn even_ones() -> Machine {
    // States: 0 = even-so-far, 1 = odd-so-far, 2 = accept.
    let mut m = Machine::new("even_ones", 3, 2);
    m.accepting.push(State(2));
    m.add_transition(
        State(0),
        S1,
        Action {
            write: S1,
            work_move: Move::Right,
            oracle_write: None,
            next: State(1),
        },
    );
    m.add_transition(
        State(1),
        S1,
        Action {
            write: S1,
            work_move: Move::Right,
            oracle_write: None,
            next: State(0),
        },
    );
    // Reading a blank in the even state: accept. (Blanks inside the input
    // count as terminators, which is fine for our test inputs.)
    m.add_transition(
        State(0),
        S0,
        Action {
            write: S0,
            work_move: Move::Right,
            oracle_write: None,
            next: State(2),
        },
    );
    // Reading a blank in the odd state: keep scanning (will never accept).
    m.add_transition(
        State(1),
        S0,
        Action {
            write: S0,
            work_move: Move::Right,
            oracle_write: None,
            next: State(1),
        },
    );
    m
}

/// Nondeterministically writes `n` bits onto its own work tape, then
/// accepts iff some written bit was `1` — a pure ∃-guess.
pub fn guess_contains_one(n: u8) -> Machine {
    // States: 0..n = writing position i; n+1 = scan-back-left; n+2 = accept.
    let scan = n + 1;
    let accept = n + 2;
    let mut m = Machine::new(format!("guess_contains_one_{n}"), n + 3, 2);
    m.accepting.push(State(accept));
    for i in 0..n {
        for write in [S0, S1] {
            m.add_transition(
                State(i),
                S0,
                Action {
                    write,
                    work_move: Move::Right,
                    oracle_write: None,
                    next: State(i + 1),
                },
            );
        }
    }
    // After writing, the head is at cell n; scan left for a 1.
    m.add_transition(
        State(n),
        S0,
        Action {
            write: S0,
            work_move: Move::Left,
            oracle_write: None,
            next: State(scan),
        },
    );
    m.add_transition(
        State(scan),
        S0,
        Action {
            write: S0,
            work_move: Move::Left,
            oracle_write: None,
            next: State(scan),
        },
    );
    m.add_transition(
        State(scan),
        S1,
        Action {
            write: S1,
            work_move: Move::Left,
            oracle_write: None,
            next: State(accept),
        },
    );
    m
}

/// Oracle protocol states shared by the oracle-using library machines:
/// the machine has states `0..=n+3` where `n+1 = query`, `n+2 = yes`,
/// `n+3 = no` (which of `yes`/`no` is accepting varies).
fn with_protocol(mut m: Machine, n: u8) -> Machine {
    m.oracle = Some(OracleProtocol {
        query: State(n + 1),
        yes: State(n + 2),
        no: State(n + 3),
    });
    m
}

/// Nondeterministically writes `n` bits to the *oracle tape*, queries the
/// oracle, and accepts iff the answer is *yes* (`∃w: oracle(w)`).
pub fn guess_and_ask(n: u8) -> Machine {
    let mut m = Machine::new(format!("guess_and_ask_{n}"), n + 4, 2);
    for i in 0..n {
        for bit in [S0, S1] {
            m.add_transition(
                State(i),
                S0,
                Action {
                    write: S0,
                    work_move: Move::Right,
                    oracle_write: Some(bit),
                    next: State(i + 1),
                },
            );
        }
    }
    // Step into the query state (one more work-tape step).
    m.add_transition(
        State(n),
        S0,
        Action {
            write: S0,
            work_move: Move::Right,
            oracle_write: None,
            next: State(n + 1),
        },
    );
    let mut m = with_protocol(m, n);
    m.accepting.push(State(n + 2)); // accept on yes
    m
}

/// Like [`guess_and_ask`] but accepts iff the oracle answers *no*
/// (`∃w: ¬oracle(w)`) — this exercises the encoding's `~ORACLE` rule.
pub fn guess_and_ask_no(n: u8) -> Machine {
    let mut m = guess_and_ask(n);
    m.name = format!("guess_and_ask_no_{n}");
    m.accepting.clear();
    m.accepting.push(State(n + 3)); // accept on no
    m
}

/// Deterministically writes `bit` once to the oracle tape, queries, and
/// accepts on *yes* (`accept_on_yes`) or *no*.
pub fn write_then_ask(bit: Sym, accept_on_yes: bool) -> Machine {
    let mut m = Machine::new(
        format!(
            "write{}_then_ask_{}",
            bit.0,
            if accept_on_yes { "yes" } else { "no" }
        ),
        5,
        2,
    );
    m.add_transition(
        State(0),
        S0,
        Action {
            write: S0,
            work_move: Move::Right,
            oracle_write: Some(bit),
            next: State(1),
        },
    );
    let mut m = with_protocol(m, 0);
    m.accepting
        .push(if accept_on_yes { State(2) } else { State(3) });
    m
}

/// Tape alphabet for bitmap images (§6.2.2): blank, bit 0, bit 1.
pub mod bitmap_alphabet {
    use crate::machine::Sym;
    /// Blank — beyond the bitmap.
    pub const BLANK: Sym = Sym(0);
    /// Bit 0 — tuple absent.
    pub const ZERO: Sym = Sym(1);
    /// Bit 1 — tuple present.
    pub const ONE: Sym = Sym(2);
}

/// Scans a bitmap tape rightward and accepts iff it contains a ONE —
/// decides the generic query "is the (unary) relation nonempty?".
pub fn bitmap_nonempty() -> Machine {
    use bitmap_alphabet::{ONE, ZERO};
    let mut m = Machine::new("bitmap_nonempty", 2, 3);
    m.accepting.push(State(1));
    m.add_transition(
        State(0),
        ZERO,
        Action {
            write: ZERO,
            work_move: Move::Right,
            oracle_write: None,
            next: State(0),
        },
    );
    m.add_transition(
        State(0),
        ONE,
        Action {
            write: ONE,
            work_move: Move::Right,
            oracle_write: None,
            next: State(1),
        },
    );
    // On BLANK: halt (reject this branch) — no transition.
    m
}

/// Scans a bitmap tape rightward and accepts iff it holds an even number
/// of ONEs — decides the generic query "is |p| even?". The end of the
/// bitmap is the first BLANK cell.
pub fn bitmap_even_ones() -> Machine {
    use bitmap_alphabet::{BLANK, ONE, ZERO};
    // States: 0 even-so-far, 1 odd-so-far, 2 accept.
    let mut m = Machine::new("bitmap_even_ones", 3, 3);
    m.accepting.push(State(2));
    for (state, one_next) in [(0u8, 1u8), (1, 0)] {
        m.add_transition(
            State(state),
            ZERO,
            Action {
                write: ZERO,
                work_move: Move::Right,
                oracle_write: None,
                next: State(state),
            },
        );
        m.add_transition(
            State(state),
            ONE,
            Action {
                write: ONE,
                work_move: Move::Right,
                oracle_write: None,
                next: State(one_next),
            },
        );
    }
    m.add_transition(
        State(0),
        BLANK,
        Action {
            write: BLANK,
            work_move: Move::Right,
            oracle_write: None,
            next: State(2),
        },
    );
    // Odd at the end: no transition on BLANK → reject.
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_machines_validate() {
        for m in [
            always_accept(),
            never_accept(),
            contains_one(),
            even_ones(),
            guess_contains_one(3),
            guess_and_ask(2),
            guess_and_ask_no(2),
            write_then_ask(S1, true),
        ] {
            assert!(m.validate().is_ok(), "{} must validate", m.name);
        }
    }

    #[test]
    fn guessing_machines_are_nondeterministic() {
        let m = guess_contains_one(2);
        assert_eq!(m.actions(State(0), S0).len(), 2);
        let m = guess_and_ask(1);
        assert_eq!(m.actions(State(0), S0).len(), 2);
    }
}
