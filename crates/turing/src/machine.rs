//! Nondeterministic oracle Turing machines, as used in §5.1 of the paper.
//!
//! A machine has a read/write *work tape* and (if it invokes an oracle) a
//! write-only *oracle tape*, which is the work tape of the machine below
//! it in the cascade. Each transition reads the work-tape symbol under the
//! work head and, nondeterministically, picks an action that writes the
//! work tape, moves the work head, optionally writes the oracle tape
//! (moving the oracle head one cell right), and changes state. Three
//! distinguished states implement the oracle protocol: entering `query`
//! suspends the machine, runs the oracle on the oracle tape, and resumes
//! in `yes` or `no`.

use std::collections::BTreeMap;

/// A tape symbol (index into the machine's alphabet).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u8);

/// A control state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct State(pub u8);

/// Work-head movement. The paper's encoding uses `NEXT` both ways, so
/// both directions are supported; there is no "stay".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// One cell toward position 0.
    Left,
    /// One cell away from position 0.
    Right,
}

/// One nondeterministic alternative of a transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Action {
    /// Symbol written to the work tape at the work head.
    pub write: Sym,
    /// Work-head movement.
    pub work_move: Move,
    /// If `Some(d)`: write `d` at the oracle head and move it right.
    pub oracle_write: Option<Sym>,
    /// Next control state.
    pub next: State,
}

/// Special states implementing the oracle protocol (§5.1.3 (iii)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OracleProtocol {
    /// `q?` — invoke the oracle and suspend.
    pub query: State,
    /// `q_y` — resumed here when the oracle answers *yes*.
    pub yes: State,
    /// `q_n` — resumed here when the oracle answers *no*.
    pub no: State,
}

/// A nondeterministic (oracle) Turing machine.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable name (used in reports and generated predicates).
    pub name: String,
    /// Number of states; states are `0..num_states`.
    pub num_states: u8,
    /// Number of tape symbols; symbols are `0..num_symbols`.
    pub num_symbols: u8,
    /// The blank symbol.
    pub blank: Sym,
    /// Initial control state.
    pub start: State,
    /// Accepting control states.
    pub accepting: Vec<State>,
    /// Oracle protocol states, if this machine invokes an oracle.
    pub oracle: Option<OracleProtocol>,
    /// The transition relation: `(state, read symbol) → alternatives`.
    /// Deterministic states have one alternative; nondeterministic choice
    /// points have several; missing entries halt (reject) that branch.
    pub transitions: BTreeMap<(State, Sym), Vec<Action>>,
}

impl Machine {
    /// Creates a machine skeleton with no transitions.
    pub fn new(name: impl Into<String>, num_states: u8, num_symbols: u8) -> Self {
        assert!(num_symbols >= 1, "need at least the blank symbol");
        Machine {
            name: name.into(),
            num_states,
            num_symbols,
            blank: Sym(0),
            start: State(0),
            accepting: Vec::new(),
            oracle: None,
            transitions: BTreeMap::new(),
        }
    }

    /// Adds one nondeterministic alternative for `(state, read)`.
    pub fn add_transition(&mut self, state: State, read: Sym, action: Action) -> &mut Self {
        assert!(state.0 < self.num_states, "state out of range");
        assert!(read.0 < self.num_symbols, "symbol out of range");
        assert!(action.write.0 < self.num_symbols, "write out of range");
        assert!(action.next.0 < self.num_states, "next state out of range");
        if let Some(d) = action.oracle_write {
            assert!(d.0 < self.num_symbols, "oracle write out of range");
        }
        self.transitions
            .entry((state, read))
            .or_default()
            .push(action);
        self
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: State) -> bool {
        self.accepting.contains(&s)
    }

    /// The alternatives for `(state, read)` (empty slice = halt/reject).
    pub fn actions(&self, state: State, read: Sym) -> &[Action] {
        self.transitions
            .get(&(state, read))
            .map_or(&[], |v| v.as_slice())
    }

    /// All `(state, read, action)` triples, for encoders.
    pub fn all_transitions(&self) -> impl Iterator<Item = (State, Sym, Action)> + '_ {
        self.transitions
            .iter()
            .flat_map(|(&(q, s), acts)| acts.iter().map(move |&a| (q, s, a)))
    }

    /// Basic well-formedness checks (used by encoders before compiling).
    pub fn validate(&self) -> Result<(), String> {
        if self.start.0 >= self.num_states {
            return Err("start state out of range".into());
        }
        if self.blank.0 >= self.num_symbols {
            return Err("blank symbol out of range".into());
        }
        for s in &self.accepting {
            if s.0 >= self.num_states {
                return Err("accepting state out of range".into());
            }
        }
        if let Some(p) = self.oracle {
            for (nm, s) in [("query", p.query), ("yes", p.yes), ("no", p.no)] {
                if s.0 >= self.num_states {
                    return Err(format!("oracle {nm} state out of range"));
                }
            }
            // The query state suspends the machine; transitions out of it
            // would be ambiguous with the oracle protocol.
            if self.transitions.keys().any(|&(q, _)| q == p.query) {
                return Err("query state must have no ordinary transitions".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_transitions() {
        let mut m = Machine::new("t", 2, 2);
        m.add_transition(
            State(0),
            Sym(0),
            Action {
                write: Sym(1),
                work_move: Move::Right,
                oracle_write: None,
                next: State(1),
            },
        );
        m.add_transition(
            State(0),
            Sym(0),
            Action {
                write: Sym(0),
                work_move: Move::Right,
                oracle_write: None,
                next: State(0),
            },
        );
        assert_eq!(m.actions(State(0), Sym(0)).len(), 2);
        assert!(m.actions(State(1), Sym(0)).is_empty());
        assert_eq!(m.all_transitions().count(), 2);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_oracle_protocol() {
        let mut m = Machine::new("t", 3, 2);
        m.oracle = Some(OracleProtocol {
            query: State(2),
            yes: State(0),
            no: State(1),
        });
        m.add_transition(
            State(2),
            Sym(0),
            Action {
                write: Sym(0),
                work_move: Move::Right,
                oracle_write: None,
                next: State(0),
            },
        );
        assert!(m.validate().is_err(), "query state must be transition-free");
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn add_transition_bounds_checked() {
        let mut m = Machine::new("t", 1, 1);
        m.add_transition(
            State(1),
            Sym(0),
            Action {
                write: Sym(0),
                work_move: Move::Left,
                oracle_write: None,
                next: State(0),
            },
        );
    }
}
