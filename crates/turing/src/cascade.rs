//! Cascades of oracle machines `Mₖ, …, M₁` and their direct simulation.
//!
//! A [`Cascade`] is the composite machine of §5.1: `machines[k-1]` is the
//! top machine `Mₖ` (which reads the input), and each `Mᵢ` uses `Mᵢ₋₁` as
//! its oracle; `M₁` must not invoke an oracle. The simulator is the
//! *ground truth* the §5.1 rulebase encoding is validated against
//! (experiment E6): it explores nondeterministic computation paths by
//! depth-first search, bounded by the same time/space budget the
//! encoding's counter provides, with the same boundary conventions:
//!
//! - tape cells are `0..bound`; moving a head outside kills the branch
//!   (the encoding's `NEXT` has no successor there);
//! - an oracle invocation consumes one time step and resumes in `yes`/`no`;
//! - the invoked oracle starts at the *current* time and must finish
//!   within the same global bound (§5.1's shared counter);
//! - a branch accepts the moment its control state is accepting.

use crate::machine::{Machine, Move, State, Sym};

/// A cascade `Mₖ, …, M₁` (index `k-1` down to `0`).
#[derive(Clone, Debug)]
pub struct Cascade {
    /// `machines[i]` is `Mᵢ₊₁`; the last entry is the top machine.
    pub machines: Vec<Machine>,
}

/// One machine's live configuration during simulation.
struct Config {
    state: State,
    work: Vec<Sym>,
    work_head: usize,
    oracle_tape: Vec<Sym>,
    oracle_head: usize,
}

impl Cascade {
    /// Builds a cascade after validating every machine.
    ///
    /// `machines` are given top-first (`Mₖ` first) for readability; they
    /// are stored bottom-first internally.
    pub fn new(machines_top_first: Vec<Machine>) -> Result<Self, String> {
        if machines_top_first.is_empty() {
            return Err("cascade needs at least one machine".into());
        }
        let mut machines = machines_top_first;
        machines.reverse(); // store bottom-first: machines[0] = M₁
        for (i, m) in machines.iter().enumerate() {
            m.validate()
                .map_err(|e| format!("machine {}: {e}", m.name))?;
            if i == 0 && m.oracle.is_some() {
                return Err(format!("bottom machine {} must not use an oracle", m.name));
            }
            if i > 0 && m.oracle.is_none() {
                return Err(format!(
                    "machine {} has an oracle below it but no oracle protocol; \
                     every non-bottom machine must invoke its oracle states",
                    m.name
                ));
            }
            if i > 0 {
                // The oracle tape alphabet is the lower machine's.
                let lower = &machines[i - 1];
                if m.num_symbols > lower.num_symbols {
                    return Err(format!(
                        "machine {} writes symbols its oracle {} lacks",
                        m.name, lower.name
                    ));
                }
            }
        }
        Ok(Cascade { machines })
    }

    /// Number of machines `k`.
    pub fn depth(&self) -> usize {
        self.machines.len()
    }

    /// The top machine `Mₖ`.
    pub fn top(&self) -> &Machine {
        self.machines.last().expect("non-empty")
    }

    /// Whether the cascade accepts `input` within `bound` time steps and
    /// tape cells (the encoding's counter size `n^l`).
    pub fn accepts(&self, input: &[Sym], bound: usize) -> bool {
        assert!(bound >= 1, "bound must be positive");
        let top = self.machines.len() - 1;
        let m = &self.machines[top];
        let mut work = vec![m.blank; bound];
        for (i, &s) in input.iter().enumerate() {
            if i < bound {
                work[i] = s;
            }
        }
        self.run(top, work, 0, bound)
    }

    /// Runs machine `level` from its initial control state on `work`,
    /// starting at time `t0`; returns whether some path accepts. Exposed
    /// for the trace extractor, which answers oracle calls this way.
    pub(crate) fn run_from(&self, level: usize, work: Vec<Sym>, t0: usize, bound: usize) -> bool {
        self.run(level, work, t0, bound)
    }

    /// Runs machine `level` from its initial control state on `work`,
    /// starting at time `t0`; returns whether some path accepts.
    fn run(&self, level: usize, work: Vec<Sym>, t0: usize, bound: usize) -> bool {
        let m = &self.machines[level];
        let mut cfg = Config {
            state: m.start,
            work,
            work_head: 0,
            oracle_tape: if level > 0 {
                vec![self.machines[level - 1].blank; bound]
            } else {
                Vec::new()
            },
            oracle_head: 0,
        };
        self.search(level, &mut cfg, t0, bound)
    }

    /// DFS over the nondeterministic choices of machine `level`.
    fn search(&self, level: usize, cfg: &mut Config, t: usize, bound: usize) -> bool {
        let m = &self.machines[level];
        if m.is_accepting(cfg.state) {
            return true;
        }
        if t + 1 >= bound {
            // No NEXT(t, t') exists: the branch cannot step again.
            return false;
        }
        if let Some(p) = m.oracle {
            if cfg.state == p.query {
                // Invoke the oracle on a copy of the oracle tape; its own
                // computation starts at the current time (§5.1's shared
                // counter) and leaves this machine's tapes untouched.
                let answer = self.run(level - 1, cfg.oracle_tape.clone(), t, bound);
                cfg.state = if answer { p.yes } else { p.no };
                let accepted = self.search(level, cfg, t + 1, bound);
                cfg.state = p.query;
                return accepted;
            }
        }
        let read = cfg.work[cfg.work_head];
        let actions: Vec<_> = m.actions(cfg.state, read).to_vec();
        for a in actions {
            // Apply with undo (cheaper than cloning tapes per branch).
            let old_state = cfg.state;
            let old_sym = cfg.work[cfg.work_head];
            let old_head = cfg.work_head;
            let old_oracle = cfg.oracle_head;
            let mut old_oracle_sym = None;

            cfg.work[cfg.work_head] = a.write;
            let moved = match a.work_move {
                Move::Left => cfg.work_head.checked_sub(1),
                Move::Right => {
                    let h = cfg.work_head + 1;
                    (h < bound).then_some(h)
                }
            };
            let Some(new_head) = moved else {
                cfg.work[old_head] = old_sym;
                continue; // head fell off the counter: branch dies
            };
            cfg.work_head = new_head;
            let mut oracle_ok = true;
            if let Some(d) = a.oracle_write {
                if cfg.oracle_head < bound && level > 0 {
                    old_oracle_sym = Some(cfg.oracle_tape[cfg.oracle_head]);
                    cfg.oracle_tape[cfg.oracle_head] = d;
                    cfg.oracle_head += 1;
                } else {
                    oracle_ok = false; // oracle head off the counter
                }
            }
            if oracle_ok {
                cfg.state = a.next;
                if self.search(level, cfg, t + 1, bound) {
                    return true;
                }
            }
            // Undo.
            cfg.state = old_state;
            cfg.work_head = old_head;
            cfg.work[old_head] = old_sym;
            if let Some(s) = old_oracle_sym {
                cfg.oracle_head -= 1;
                cfg.oracle_tape[cfg.oracle_head] = s;
            }
            let _ = old_oracle;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn cascade_rejects_oracle_on_bottom_machine() {
        let m = library::guess_and_ask(2);
        assert!(Cascade::new(vec![m]).is_err());
    }

    #[test]
    fn single_machine_accepts_contains_one() {
        let c = Cascade::new(vec![library::contains_one()]).unwrap();
        let one = Sym(1);
        let zero = Sym(0);
        assert!(c.accepts(&[zero, one, zero], 16));
        assert!(!c.accepts(&[zero, zero, zero], 16));
        assert!(c.accepts(&[one], 16));
        assert!(!c.accepts(&[], 16));
    }

    #[test]
    fn always_accept_and_never_accept() {
        let c = Cascade::new(vec![library::always_accept()]).unwrap();
        assert!(c.accepts(&[], 2));
        let c = Cascade::new(vec![library::never_accept()]).unwrap();
        assert!(!c.accepts(&[Sym(0)], 16));
    }

    #[test]
    fn parity_machine_counts_ones() {
        let c = Cascade::new(vec![library::even_ones()]).unwrap();
        let one = Sym(1);
        let zero = Sym(0);
        assert!(c.accepts(&[], 8));
        assert!(!c.accepts(&[one], 8));
        assert!(c.accepts(&[one, zero, one], 16));
        assert!(!c.accepts(&[one, one, one], 16));
    }

    #[test]
    fn guessing_machine_finds_a_witness() {
        // Nondeterministically writes n symbols to its work tape and
        // accepts iff it wrote a 1 somewhere (∃-guessing).
        let c = Cascade::new(vec![library::guess_contains_one(3)]).unwrap();
        assert!(c.accepts(&[], 16));
    }

    #[test]
    fn two_level_cascade_queries_its_oracle() {
        // Top machine writes a guessed bit to the oracle tape, then asks
        // contains-one; accepts iff the oracle says yes — which the guess
        // can always arrange.
        let top = library::guess_and_ask(1);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        assert!(c.accepts(&[], 16));

        // Same, but accept on the oracle saying NO: also satisfiable by
        // guessing 0. Both outcomes being reachable is what makes the
        // encoding's ~ORACLE rule observable.
        let top = library::guess_and_ask_no(1);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        assert!(c.accepts(&[], 16));
    }

    #[test]
    fn oracle_answer_depends_on_written_string() {
        // Deterministic writer: writes `1` then queries. Oracle yes → accept.
        let top = library::write_then_ask(Sym(1), true);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        assert!(c.accepts(&[], 16));
        // Writes `0` then queries. Oracle says no → accept-on-yes fails.
        let top = library::write_then_ask(Sym(0), true);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        assert!(!c.accepts(&[], 16));
        // Writes `0`, accepts on NO.
        let top = library::write_then_ask(Sym(0), false);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        assert!(c.accepts(&[], 16));
    }

    #[test]
    fn bound_limits_time() {
        // contains_one on input with the 1 at position 5 needs 7 steps.
        let c = Cascade::new(vec![library::contains_one()]).unwrap();
        let mut input = vec![Sym(0); 6];
        input[5] = Sym(1);
        assert!(c.accepts(&input, 16));
        assert!(!c.accepts(&input, 5), "not enough time to reach the 1");
    }
}
