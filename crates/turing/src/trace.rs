//! Accepting-run extraction: the witness behind a cascade's `accept`.
//!
//! [`accepting_trace`] re-runs the DFS of [`crate::cascade`] but records
//! the sequence of configurations of the *top* machine (oracle calls are
//! summarized by their answer). The §5.1 encoding's hypothetical
//! insertions correspond one-to-one to these steps, so traces are the
//! bridge for debugging encodings — and [`validate_trace`] re-checks
//! every step against the transition relation, independently of the
//! search that produced it.

use crate::cascade::Cascade;
use crate::machine::{Move, State, Sym};

/// One step of an accepting run of the top machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Time before the step.
    pub time: usize,
    /// Control state before the step.
    pub state: State,
    /// Work-head position before the step.
    pub work_head: usize,
    /// Symbol read from the work tape.
    pub read: Sym,
    /// What the machine did.
    pub action: TraceAction,
}

/// The action taken in one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceAction {
    /// An ordinary transition: wrote, moved, changed state.
    Step {
        /// Symbol written at the work head.
        write: Sym,
        /// Head movement.
        work_move: Move,
        /// Symbol written to the oracle tape (if any).
        oracle_write: Option<Sym>,
        /// New control state.
        next: State,
    },
    /// Invoked the oracle, which answered `answer`, resuming in `next`.
    OracleCall {
        /// The oracle's verdict.
        answer: bool,
        /// Resumption state (`q_y` or `q_n`).
        next: State,
    },
    /// The run reached an accepting state here; no action taken.
    Accept,
}

/// A full accepting run of the cascade's top machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The steps, initial configuration first; the last step is
    /// [`TraceAction::Accept`].
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Number of machine steps (excluding the final accept marker).
    pub fn len(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// Whether the trace has no steps at all.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Like [`Cascade::accepts`], but returns the witnessing run of the top
/// machine on acceptance.
pub fn accepting_trace(cascade: &Cascade, input: &[Sym], bound: usize) -> Option<Trace> {
    assert!(bound >= 1);
    let top = cascade.machines.len() - 1;
    let m = &cascade.machines[top];
    let mut work = vec![m.blank; bound];
    for (i, &s) in input.iter().enumerate() {
        if i < bound {
            work[i] = s;
        }
    }
    let mut steps = Vec::new();
    let mut oracle_tape = if top > 0 {
        vec![cascade.machines[top - 1].blank; bound]
    } else {
        Vec::new()
    };
    if search(
        cascade,
        top,
        m.start,
        &mut work,
        0,
        &mut oracle_tape,
        0,
        0,
        bound,
        &mut steps,
    ) {
        Some(Trace { steps })
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    cascade: &Cascade,
    level: usize,
    state: State,
    work: &mut [Sym],
    work_head: usize,
    oracle_tape: &mut [Sym],
    oracle_head: usize,
    t: usize,
    bound: usize,
    steps: &mut Vec<TraceStep>,
) -> bool {
    let m = &cascade.machines[level];
    let read = work[work_head];
    if m.is_accepting(state) {
        steps.push(TraceStep {
            time: t,
            state,
            work_head,
            read,
            action: TraceAction::Accept,
        });
        return true;
    }
    if t + 1 >= bound {
        return false;
    }
    if let Some(p) = m.oracle {
        if state == p.query {
            let answer = oracle_answer(cascade, level - 1, oracle_tape, t, bound);
            let next = if answer { p.yes } else { p.no };
            steps.push(TraceStep {
                time: t,
                state,
                work_head,
                read,
                action: TraceAction::OracleCall { answer, next },
            });
            if search(
                cascade,
                level,
                next,
                work,
                work_head,
                oracle_tape,
                oracle_head,
                t + 1,
                bound,
                steps,
            ) {
                return true;
            }
            steps.pop();
            return false;
        }
    }
    let actions: Vec<_> = m.actions(state, read).to_vec();
    for a in actions {
        let old_sym = work[work_head];
        work[work_head] = a.write;
        let moved = match a.work_move {
            Move::Left => work_head.checked_sub(1),
            Move::Right => {
                let h = work_head + 1;
                (h < bound).then_some(h)
            }
        };
        let Some(new_head) = moved else {
            work[work_head] = old_sym;
            continue;
        };
        let mut old_oracle = None;
        let mut new_oracle_head = oracle_head;
        let mut ok = true;
        if let Some(d) = a.oracle_write {
            if oracle_head < bound && level > 0 {
                old_oracle = Some(oracle_tape[oracle_head]);
                oracle_tape[oracle_head] = d;
                new_oracle_head = oracle_head + 1;
            } else {
                ok = false;
            }
        }
        if ok {
            steps.push(TraceStep {
                time: t,
                state,
                work_head,
                read,
                action: TraceAction::Step {
                    write: a.write,
                    work_move: a.work_move,
                    oracle_write: a.oracle_write,
                    next: a.next,
                },
            });
            if search(
                cascade,
                level,
                a.next,
                work,
                new_head,
                oracle_tape,
                new_oracle_head,
                t + 1,
                bound,
                steps,
            ) {
                return true;
            }
            steps.pop();
        }
        work[work_head] = old_sym;
        if let Some(s) = old_oracle {
            oracle_tape[oracle_head] = s;
        }
    }
    false
}

/// Answers an oracle call by running the sub-cascade on a copy of the
/// oracle tape (matching the semantics of [`Cascade::accepts`]).
fn oracle_answer(cascade: &Cascade, level: usize, tape: &[Sym], t: usize, bound: usize) -> bool {
    // Build a one-level-shorter cascade view and run it.
    let sub = Cascade {
        machines: cascade.machines[..=level].to_vec(),
    };
    let m = &sub.machines[level];
    let mut work = tape.to_vec();
    work.resize(bound, m.blank);
    sub.run_from(level, work, t, bound)
}

/// Re-checks a trace step by step against the machine's transition
/// relation and the shared time/space bound. Returns the index of the
/// first invalid step, if any.
pub fn validate_trace(
    cascade: &Cascade,
    input: &[Sym],
    bound: usize,
    trace: &Trace,
) -> Option<usize> {
    let top = cascade.machines.len() - 1;
    let m = &cascade.machines[top];
    let mut work = vec![m.blank; bound];
    for (i, &s) in input.iter().enumerate() {
        if i < bound {
            work[i] = s;
        }
    }
    let mut state = m.start;
    let mut head = 0usize;
    let mut t = 0usize;
    for (i, step) in trace.steps.iter().enumerate() {
        if step.time != t || step.state != state || step.work_head != head {
            return Some(i);
        }
        if work[head] != step.read {
            return Some(i);
        }
        match &step.action {
            TraceAction::Accept => {
                if !m.is_accepting(state) {
                    return Some(i);
                }
                return None; // valid accepting run
            }
            TraceAction::OracleCall { next, .. } => {
                let Some(p) = m.oracle else { return Some(i) };
                if state != p.query || (*next != p.yes && *next != p.no) {
                    return Some(i);
                }
                state = *next;
                t += 1;
            }
            TraceAction::Step {
                write,
                work_move,
                oracle_write,
                next,
            } => {
                let legal = m.actions(state, step.read).iter().any(|a| {
                    a.write == *write
                        && a.work_move == *work_move
                        && a.oracle_write == *oracle_write
                        && a.next == *next
                });
                if !legal {
                    return Some(i);
                }
                work[head] = *write;
                head = match work_move {
                    Move::Left => match head.checked_sub(1) {
                        Some(h) => h,
                        None => return Some(i),
                    },
                    Move::Right => {
                        if head + 1 >= bound {
                            return Some(i);
                        }
                        head + 1
                    }
                };
                state = *next;
                t += 1;
            }
        }
        if t >= bound {
            return Some(i);
        }
    }
    // A trace must end in Accept.
    Some(trace.steps.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::Cascade;

    const S0: Sym = Sym(0);
    const S1: Sym = Sym(1);

    #[test]
    fn trace_exists_iff_accepting() {
        let c = Cascade::new(vec![library::contains_one()]).unwrap();
        assert!(accepting_trace(&c, &[S0, S1], 6).is_some());
        assert!(accepting_trace(&c, &[S0, S0], 6).is_none());
    }

    #[test]
    fn traces_validate() {
        let c = Cascade::new(vec![library::contains_one()]).unwrap();
        let input = [S0, S0, S1];
        let trace = accepting_trace(&c, &input, 8).expect("accepts");
        assert_eq!(validate_trace(&c, &input, 8, &trace), None);
        assert_eq!(trace.len(), 3, "three scans to reach the 1");
    }

    #[test]
    fn corrupted_traces_are_rejected() {
        let c = Cascade::new(vec![library::contains_one()]).unwrap();
        let input = [S1];
        let mut trace = accepting_trace(&c, &input, 4).unwrap();
        // Tamper with the read symbol of the first step.
        trace.steps[0].read = S0;
        assert_eq!(validate_trace(&c, &input, 4, &trace), Some(0));
        // Truncate the accept marker.
        let mut t2 = accepting_trace(&c, &input, 4).unwrap();
        t2.steps.pop();
        assert!(validate_trace(&c, &input, 4, &t2).is_some());
    }

    #[test]
    fn oracle_calls_appear_in_traces() {
        let top = library::write_then_ask(S1, true);
        let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
        let trace = accepting_trace(&c, &[], 8).expect("accepts");
        assert!(trace
            .steps
            .iter()
            .any(|s| matches!(s.action, TraceAction::OracleCall { answer: true, .. })));
        assert_eq!(validate_trace(&c, &[], 8, &trace), None);
    }

    #[test]
    fn nondeterministic_guess_trace_is_a_valid_witness() {
        let c = Cascade::new(vec![library::guess_contains_one(3)]).unwrap();
        let trace = accepting_trace(&c, &[], 16).expect("accepts");
        assert_eq!(validate_trace(&c, &[], 16, &trace), None);
        // Some step must have written a 1.
        assert!(trace.steps.iter().any(|s| matches!(
            s.action,
            TraceAction::Step { write, .. } if write == S1
        )));
    }
}
