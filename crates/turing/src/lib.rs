//! # hdl-turing
//!
//! Nondeterministic oracle Turing machines — the §5.1 substrate of the
//! Bonner PODS '89 reproduction.
//!
//! The paper's lower-bound construction compiles a cascade of NP oracle
//! machines `Mₖ, …, M₁` (a `Σₖᴾ` machine) into a hypothetical rulebase.
//! This crate provides the machines themselves:
//!
//! - [`machine`] — two-head nondeterministic machines with the paper's
//!   `q?`/`q_y`/`q_n` oracle protocol;
//! - [`cascade`] — composite machines and a bounded DFS simulator, the
//!   ground truth the rulebase encoding (`hdl-encodings`) is checked
//!   against;
//! - [`library`] — small concrete machines (scanners, parity, ∃-guessers,
//!   oracle callers) used by tests, examples and benchmarks;
//! - [`trace`] — accepting-run extraction and independent step-by-step
//!   validation, the debugging bridge to the §5.1 encodings.

#![warn(missing_docs)]

pub mod cascade;
pub mod library;
pub mod machine;
pub mod trace;

pub use cascade::Cascade;
pub use machine::{Action, Machine, Move, OracleProtocol, State, Sym};
pub use trace::{accepting_trace, validate_trace, Trace, TraceAction, TraceStep};
