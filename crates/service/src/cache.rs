//! The shared cross-query answer cache.
//!
//! Keys combine the snapshot **epoch**, the engine, the database the
//! query runs against, and a *canonical* rendering of the goal
//! (pretty-printing normalizes whitespace and alpha-renames variables,
//! so `?- tc(X,Y).` and `?-  tc(A, B) .` share an entry). Because every
//! published snapshot carries a globally unique epoch, a publish
//! invalidates the whole cache by construction — old keys can never
//! collide with new ones — and [`AnswerCache::retain_epoch`] merely
//! reclaims the memory eagerly.
//!
//! Only definitive outcomes ([`Outcome::is_definitive`]) are stored:
//! `Cancelled` / `DeadlineExceeded` / `Error` depend on the budget, not
//! the program, and must never be replayed to a later caller.

use crate::outcome::Outcome;
use hdl_base::{DbId, FxHashMap};
use hdl_core::session::EngineKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What makes two queries "the same query" for reuse purposes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Epoch of the snapshot the query was submitted against.
    pub epoch: u64,
    /// Engine that computed (or would compute) the answer.
    pub engine: EngineKind,
    /// Database the goal is evaluated in.
    pub db: DbId,
    /// Fingerprint of the database's *negative* overlay (deleted-fact
    /// deltas). `DbId` interning canonicalizes by represented set, but a
    /// `del:` branch and a positive-only overlay can momentarily share a
    /// canonical hash while their masked views differ; keying on the
    /// fingerprint makes such aliasing impossible (it is `0` for every
    /// deletion-free database, so positive-only keys are unchanged).
    pub neg_fingerprint: u64,
    /// Canonical goal text, prefixed with the request kind
    /// (`ask`/`rows`).
    pub goal: String,
}

/// A concurrency-safe map from canonical queries to definitive outcomes.
#[derive(Debug, Default)]
pub struct AnswerCache {
    map: Mutex<FxHashMap<CacheKey, Outcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnswerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the map, recovering from poisoning: every critical section
    /// below is a single atomic map operation, so a panic inside one
    /// (only possible via an injected fault) can never leave a
    /// half-written entry — the poisoned guard's data is consistent and
    /// safe to keep using.
    fn map(&self) -> MutexGuard<'_, FxHashMap<CacheKey, Outcome>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a key, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Outcome> {
        hdl_base::failpoint_fire!("cache::get");
        let found = self.map().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a definitive outcome; non-definitive outcomes are refused
    /// (budget trips must re-evaluate).
    pub fn put(&self, key: CacheKey, outcome: Outcome) {
        hdl_base::failpoint_fire!("cache::put");
        if outcome.is_definitive() {
            self.map().insert(key, outcome);
        }
    }

    /// Drops every entry not belonging to `epoch` — called on publish so
    /// superseded snapshots' answers free their memory immediately.
    pub fn retain_epoch(&self, epoch: u64) {
        hdl_base::failpoint_fire!("cache::purge");
        self.map().retain(|k, _| k.epoch == epoch);
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits and misses since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, goal: &str) -> CacheKey {
        CacheKey {
            epoch,
            engine: EngineKind::TopDown,
            db: DbId(0),
            neg_fingerprint: 0,
            goal: goal.to_owned(),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = AnswerCache::new();
        assert_eq!(cache.get(&key(1, "ask p")), None);
        cache.put(key(1, "ask p"), Outcome::True);
        assert_eq!(cache.get(&key(1, "ask p")), Some(Outcome::True));
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn non_definitive_outcomes_are_refused() {
        let cache = AnswerCache::new();
        cache.put(key(1, "ask p"), Outcome::DeadlineExceeded);
        cache.put(key(1, "ask q"), Outcome::Cancelled);
        cache.put(key(1, "ask r"), Outcome::Error("nope".into()));
        assert!(cache.is_empty());
    }

    #[test]
    fn negative_fingerprints_partition_del_branches() {
        // A del-branch can share DbId-level identity with a positive-only
        // overlay of the same canonical set; the fingerprint must keep
        // their answers apart.
        let cache = AnswerCache::new();
        let positive = key(1, "ask p");
        let mut del_branch = key(1, "ask p");
        del_branch.neg_fingerprint = 0xdead_beef;
        cache.put(positive.clone(), Outcome::True);
        assert_eq!(cache.get(&del_branch), None, "no aliasing");
        cache.put(del_branch.clone(), Outcome::False);
        assert_eq!(cache.get(&positive), Some(Outcome::True));
        assert_eq!(cache.get(&del_branch), Some(Outcome::False));
    }

    #[test]
    fn epochs_partition_the_keyspace() {
        let cache = AnswerCache::new();
        cache.put(key(1, "ask p"), Outcome::True);
        // Same goal, later epoch: distinct entry, no cross-snapshot leak.
        assert_eq!(cache.get(&key(2, "ask p")), None);
        cache.put(key(2, "ask p"), Outcome::False);
        assert_eq!(cache.get(&key(1, "ask p")), Some(Outcome::True));
        cache.retain_epoch(2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(2, "ask p")), Some(Outcome::False));
    }
}
