//! # hdl-service
//!
//! A concurrent query service for hypothetical Datalog.
//!
//! The language of Bonner's *Hypothetical Datalog* is `Σₖᴾ`-complete, so
//! a server answering arbitrary queries needs more than an evaluator: it
//! needs isolation (queries must see one consistent program state),
//! admission of concurrent work, and the ability to abandon searches
//! that will not finish in time. This crate layers those concerns over
//! the engines in `hdl-core` without touching their semantics:
//!
//! - [`QueryService`] — a fixed pool of worker threads (each with an
//!   evaluation-sized stack) draining a submission queue;
//! - [`Snapshot`](hdl_core::snapshot::Snapshot) — immutable,
//!   epoch-stamped program state shared behind an `Arc`; publishing a
//!   new snapshot never perturbs queries already running or queued;
//! - [`AnswerCache`] — one cache across all workers, keyed on
//!   `(epoch, engine, database, canonical goal)`; epochs are globally
//!   unique, so stale reuse across publishes is impossible by
//!   construction;
//! - [`QueryRequest`] budgets — per-query wall-clock deadlines and
//!   cooperative cancellation via [`Ticket::cancel`], surfacing as the
//!   structured [`Outcome::DeadlineExceeded`] / [`Outcome::Cancelled`]
//!   instead of a hang;
//! - [`ServiceStats`] — queries served, cache hits/misses, budget
//!   trips, and per-worker busy time, for `:stats` and batch summaries;
//! - fault tolerance — every job runs under panic isolation with a
//!   bounded retry budget (panics resolve to structured [`Outcome`]s
//!   and the worker's engines are rebuilt), memory budgets surface as
//!   [`Outcome::MemoryExceeded`], and a bounded queue sheds load as
//!   [`Outcome::Overloaded`]; see [`ServiceConfig`].
//!
//! ```
//! use hdl_core::snapshot::Snapshot;
//! use hdl_service::{Outcome, QueryRequest, QueryService};
//!
//! let snap = Snapshot::from_program(
//!     "take(tony, his101).
//!      grad(S) :- take(S, his101), take(S, eng201).
//!      eligible(S) :- grad(S)[add: take(S, eng201)].",
//! )
//! .unwrap();
//! let service = QueryService::new(snap, 4);
//! let outcomes = service.run_batch(vec![
//!     QueryRequest::ask("eligible(tony)"),
//!     QueryRequest::ask("grad(tony)"),
//! ]);
//! assert_eq!(outcomes, vec![Outcome::True, Outcome::False]);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod outcome;
pub mod service;
pub mod stats;

pub use cache::{AnswerCache, CacheKey};
pub use outcome::Outcome;
pub use service::{QueryRequest, QueryService, RequestKind, ServiceConfig, Ticket};
pub use stats::ServiceStats;
