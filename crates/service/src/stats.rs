//! Service-level counters, surfaced through `:stats` and batch summaries.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counter cell shared by the workers. Snapshot it with
/// [`StatsCell::snapshot`]; cache hit/miss counts live in the cache and
/// are merged in by the service.
#[derive(Debug)]
pub(crate) struct StatsCell {
    pub queries: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub errors: AtomicU64,
    pub snapshots_published: AtomicU64,
    pub panics_recovered: AtomicU64,
    pub retries: AtomicU64,
    pub shed: AtomicU64,
    pub memory_trips: AtomicU64,
    pub workers_respawned: AtomicU64,
    /// Per-worker time spent evaluating (not idling on the queue).
    pub busy_nanos: Vec<AtomicU64>,
}

impl StatsCell {
    pub fn new(workers: usize) -> Self {
        StatsCell {
            queries: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            panics_recovered: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            memory_trips: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn add_busy(&self, worker: usize, spent: Duration) {
        self.busy_nanos[worker].fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            queries_served: self.queries.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            memory_trips: self.memory_trips.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            worker_busy: self
                .busy_nanos
                .iter()
                .map(|n| Duration::from_nanos(n.load(Ordering::Relaxed)))
                .collect(),
            // Recovery is per-process, not per-worker: the service merges
            // it in from the host's report (see `QueryService::stats`).
            recovered: false,
            recovery_checkpoint_epoch: 0,
            recovery_records_replayed: 0,
            recovery_records_truncated: 0,
        }
    }
}

/// A point-in-time view of the service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered (including cache hits and budget trips).
    pub queries_served: u64,
    /// Answers served straight from the shared cache.
    pub cache_hits: u64,
    /// Queries that had to be evaluated.
    pub cache_misses: u64,
    /// Definitive answers currently cached for the live snapshot.
    pub cache_entries: u64,
    /// Queries ended by an explicit [`cancel`](crate::Ticket::cancel).
    pub cancelled: u64,
    /// Queries ended by their wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Queries that failed (parse, stratification, limits…).
    pub errors: u64,
    /// Snapshots published over the service's lifetime.
    pub snapshots_published: u64,
    /// Query panics caught and isolated (the job resolved to a
    /// structured outcome; the worker kept serving).
    pub panics_recovered: u64,
    /// Transient failures retried with backoff.
    pub retries: u64,
    /// Submissions rejected by the bounded queue ([`Outcome::Overloaded`]).
    ///
    /// [`Outcome::Overloaded`]: crate::Outcome::Overloaded
    pub shed: u64,
    /// Queries ended by a memory budget ([`Outcome::MemoryExceeded`]).
    ///
    /// [`Outcome::MemoryExceeded`]: crate::Outcome::MemoryExceeded
    pub memory_trips: u64,
    /// Worker loops restarted after a panic escaped job isolation.
    pub workers_respawned: u64,
    /// Per-worker time spent evaluating queries.
    pub worker_busy: Vec<Duration>,
    /// Whether this process restored durable state on startup (the
    /// fields below are only meaningful when set).
    pub recovered: bool,
    /// Epoch of the checkpoint recovery restored from (0 = WAL only).
    pub recovery_checkpoint_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub recovery_records_replayed: u64,
    /// Torn or corrupt WAL records truncated during recovery.
    pub recovery_records_truncated: u64,
}

impl ServiceStats {
    /// One-line JSON object of every counter — the machine-readable
    /// form behind `:stats --json` and the network protocol's `stats`
    /// op. Keys are stable; scrapers may rely on them.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"queries_served\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\
             \"cancelled\":{},\"deadline_exceeded\":{},\"errors\":{},\"snapshots_published\":{},\
             \"panics_recovered\":{},\"retries\":{},\"shed\":{},\"memory_trips\":{},\
             \"workers_respawned\":{},\"worker_busy_ms\":[",
            self.queries_served,
            self.cache_hits,
            self.cache_misses,
            self.cache_entries,
            self.cancelled,
            self.deadline_exceeded,
            self.errors,
            self.snapshots_published,
            self.panics_recovered,
            self.retries,
            self.shed,
            self.memory_trips,
            self.workers_respawned,
        );
        for (i, d) in self.worker_busy.iter().enumerate() {
            let _ = write!(
                out,
                "{}{:.3}",
                if i > 0 { "," } else { "" },
                d.as_secs_f64() * 1e3
            );
        }
        let _ = write!(out, "],\"recovered\":{}", self.recovered);
        if self.recovered {
            let _ = write!(
                out,
                ",\"recovery_checkpoint_epoch\":{},\"recovery_records_replayed\":{},\
                 \"recovery_records_truncated\":{}",
                self.recovery_checkpoint_epoch,
                self.recovery_records_replayed,
                self.recovery_records_truncated
            );
        }
        out.push('}');
        out
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries served      {} ({} cache hits, {} misses)",
            self.queries_served, self.cache_hits, self.cache_misses
        )?;
        writeln!(f, "cache entries       {}", self.cache_entries)?;
        writeln!(
            f,
            "budget trips        {} cancelled, {} deadline-exceeded",
            self.cancelled, self.deadline_exceeded
        )?;
        writeln!(
            f,
            "memory trips        {} (shed {})",
            self.memory_trips, self.shed
        )?;
        writeln!(f, "errors              {}", self.errors)?;
        writeln!(
            f,
            "panics recovered    {} ({} retries, {} workers respawned)",
            self.panics_recovered, self.retries, self.workers_respawned
        )?;
        writeln!(f, "snapshots published {}", self.snapshots_published)?;
        if self.recovered {
            writeln!(
                f,
                "recovery            checkpoint epoch {}, {} records replayed, {} truncated",
                self.recovery_checkpoint_epoch,
                self.recovery_records_replayed,
                self.recovery_records_truncated
            )?;
        }
        write!(f, "worker busy        ")?;
        for (i, d) in self.worker_busy.iter().enumerate() {
            write!(f, " #{i}:{:.1?}", d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let cell = StatsCell::new(2);
        cell.queries.fetch_add(3, Ordering::Relaxed);
        cell.add_busy(1, Duration::from_millis(5));
        let s = cell.snapshot();
        assert_eq!(s.queries_served, 3);
        assert_eq!(s.worker_busy.len(), 2);
        assert_eq!(s.worker_busy[1], Duration::from_millis(5));
        assert!(s.to_string().contains("queries served      3"));
    }

    #[test]
    fn recovery_line_appears_only_when_recovered() {
        let mut s = StatsCell::new(1).snapshot();
        assert!(!s.to_string().contains("recovery"));
        s.recovered = true;
        s.recovery_checkpoint_epoch = 4;
        s.recovery_records_replayed = 17;
        s.recovery_records_truncated = 1;
        assert!(s
            .to_string()
            .contains("recovery            checkpoint epoch 4, 17 records replayed, 1 truncated"));
    }
}
