//! The concurrent query executor: worker pool, tickets, publishing,
//! panic isolation, retries, and load shedding.

use crate::cache::{AnswerCache, CacheKey};
use crate::outcome::Outcome;
use crate::stats::{ServiceStats, StatsCell};
use hdl_base::SymbolTable;
use hdl_core::engine::{
    BottomUpEngine, Budget, CancelToken, MagicEngine, MemoryLimits, TopDownEngine,
};
use hdl_core::parser::parse_query;
use hdl_core::session::EngineKind;
use hdl_core::snapshot::Snapshot;
use hdl_core::stack::DEEP_STACK_BYTES;
use hdl_core::{pretty, Premise};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
///
/// Sound here because every critical section in this module keeps the
/// protected data consistent at each possible panic point: queue pushes
/// and pops are single `VecDeque` calls, the snapshot slot is a single
/// pointer swap, and cache inserts are single map operations — so a
/// poisoned lock never guards a torn invariant.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a query asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// A yes/no query (`?- premise.`); the `?-`/`.` dressing is
    /// optional.
    Ask(String),
    /// All tuples matching a plain atom pattern, e.g. `tc(X, Y)`.
    Answers(String),
}

/// One query to run against the service's current snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// The goal.
    pub kind: RequestKind,
    /// Engine to evaluate with.
    pub engine: EngineKind,
    /// Optional wall-clock budget; past it the query resolves to
    /// [`Outcome::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Optional per-query fact budget overriding the service default;
    /// past it the query resolves to [`Outcome::MemoryExceeded`].
    pub max_facts: Option<u64>,
    /// Optional per-query retry budget for transient failures (panics
    /// caught mid-query), overriding [`ServiceConfig::retries`].
    pub retries: Option<u32>,
}

impl QueryRequest {
    /// A yes/no query with the session-default engine and no deadline.
    pub fn ask(query: impl Into<String>) -> Self {
        QueryRequest {
            kind: RequestKind::Ask(query.into()),
            engine: EngineKind::default(),
            deadline: None,
            max_facts: None,
            retries: None,
        }
    }

    /// An all-answers query for an atom pattern.
    pub fn answers(pattern: impl Into<String>) -> Self {
        QueryRequest {
            kind: RequestKind::Answers(pattern.into()),
            engine: EngineKind::default(),
            deadline: None,
            max_facts: None,
            retries: None,
        }
    }

    /// Selects the evaluation engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps the number of new facts this query may intern.
    pub fn with_max_facts(mut self, n: u64) -> Self {
        self.max_facts = Some(n);
        self
    }

    /// Overrides the service-wide retry budget for this query.
    pub fn with_retries(mut self, n: u32) -> Self {
        self.retries = Some(n);
        self
    }
}

/// Pool-wide configuration: worker count, queue bound, retry budget,
/// and default memory limits applied to every query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads (at least one is always started).
    pub workers: usize,
    /// Queue bound: submissions past this many waiting jobs resolve to
    /// [`Outcome::Overloaded`] instead of growing the queue without
    /// bound. `None` = unbounded.
    pub queue_cap: Option<usize>,
    /// How many times a job is retried after a caught panic before it
    /// resolves to [`Outcome::Error`] with the panic payload.
    pub retries: u32,
    /// Default cap on facts a query may intern
    /// ([`QueryRequest::max_facts`] overrides per query).
    pub max_facts: Option<u64>,
    /// Default cap on memoized goals / derived tuples per query.
    pub max_goal_set: Option<u64>,
    /// Default cap on the overlay depth of databases a query reaches.
    pub max_overlay_depth: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_cap: None,
            retries: 2,
            max_facts: None,
            max_goal_set: None,
            max_overlay_depth: None,
        }
    }
}

/// A handle on one submitted query: await the outcome, or cancel it.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Outcome>,
    token: CancelToken,
}

impl Ticket {
    /// Requests cooperative cancellation; the query resolves to
    /// [`Outcome::Cancelled`] at the engine's next budget probe.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the cancellation token (e.g. to hand to a timeout
    /// thread).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Blocks until the query resolves.
    pub fn wait(self) -> Outcome {
        self.rx
            .recv()
            .unwrap_or_else(|_| Outcome::Error("query service shut down".into()))
    }
}

/// A unit of work: the request plus the snapshot it was submitted
/// against (publishing later snapshots never retargets queued work).
struct Job {
    request: QueryRequest,
    snapshot: Arc<Snapshot>,
    token: CancelToken,
    reply: mpsc::Sender<Outcome>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    snapshot: Mutex<Arc<Snapshot>>,
    cache: AnswerCache,
    stats: StatsCell,
    config: ServiceConfig,
    /// Startup recovery report (set once by the host after a durable
    /// session restore; merged into every stats snapshot).
    recovery: Mutex<Option<RecoveryInfo>>,
}

/// What a durable host restored on startup, for `:stats`.
#[derive(Clone, Copy, Debug)]
struct RecoveryInfo {
    checkpoint_epoch: u64,
    records_replayed: u64,
    records_truncated: u64,
}

impl Shared {
    /// Blocks until a job is available (returning it) or shutdown is
    /// signalled with the queue drained (returning `None`).
    fn wait_pop(&self) -> Option<Job> {
        let mut q = lock_recover(&self.queue);
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.shutdown {
                return None;
            }
            q = self
                .available
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// An in-process concurrent query executor over shared immutable
/// [`Snapshot`]s.
///
/// A fixed pool of worker threads (each with an evaluation-sized stack)
/// drains a submission queue. Workers reuse engines — and therefore
/// memo tables and the interned database lattice — for as long as they
/// keep serving the same snapshot, and all workers share one
/// [`AnswerCache`] so identical queries are answered once per snapshot.
///
/// Faults are contained: each job runs under `catch_unwind`, a panic
/// resolves the job to a structured [`Outcome`] (after bounded retries)
/// and rebuilds the worker's engines, shared locks recover from
/// poisoning, and a bounded queue sheds load with
/// [`Outcome::Overloaded`] instead of growing without bound.
///
/// ```
/// use hdl_core::snapshot::Snapshot;
/// use hdl_service::{Outcome, QueryRequest, QueryService};
///
/// let snap = Snapshot::from_program("edge(a, b). tc(X, Y) :- edge(X, Y).").unwrap();
/// let service = QueryService::new(snap, 2);
/// let t = service.submit(QueryRequest::ask("tc(a, b)"));
/// assert_eq!(t.wait(), Outcome::True);
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts a pool of `workers` threads (at least one) serving
    /// `snapshot`, with default fault-tolerance settings.
    pub fn new(snapshot: Arc<Snapshot>, workers: usize) -> Self {
        Self::with_config(
            snapshot,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    /// Starts a pool with explicit [`ServiceConfig`].
    pub fn with_config(snapshot: Arc<Snapshot>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            snapshot: Mutex::new(snapshot),
            cache: AnswerCache::new(),
            stats: StatsCell::new(workers),
            config,
            recovery: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|widx| spawn_worker(&shared, widx))
            .collect();
        QueryService {
            shared,
            workers: handles,
        }
    }

    /// The pool configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a query against the *current* snapshot and returns a
    /// ticket for its outcome.
    ///
    /// If the queue is at its configured capacity the submission is shed:
    /// the ticket resolves immediately to [`Outcome::Overloaded`] and the
    /// query never runs.
    pub fn submit(&self, request: QueryRequest) -> Ticket {
        let snapshot = Arc::clone(&lock_recover(&self.shared.snapshot));
        let token = CancelToken::new();
        let (tx, rx) = mpsc::channel();
        {
            // Capacity is checked under the queue lock so concurrent
            // submitters cannot race past the bound together.
            let mut q = lock_recover(&self.shared.queue);
            if self
                .shared
                .config
                .queue_cap
                .is_some_and(|cap| q.jobs.len() >= cap)
            {
                drop(q);
                // Shed submissions go through the same counter merge as
                // every other outcome, so `queries_served` stays the sum
                // of all resolved tickets (it used to count only `shed`,
                // leaving the totals inconsistent).
                count_outcome(&self.shared, &Outcome::Overloaded);
                let _ = tx.send(Outcome::Overloaded);
                return Ticket { rx, token };
            }
            q.jobs.push_back(Job {
                request,
                snapshot,
                token: token.clone(),
                reply: tx,
            });
        }
        self.shared.available.notify_one();
        Ticket { rx, token }
    }

    /// Submits every request and waits for all outcomes, preserving
    /// input order (execution itself is concurrent and unordered).
    pub fn run_batch(&self, requests: Vec<QueryRequest>) -> Vec<Outcome> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Publishes a new snapshot. Queries already submitted keep the
    /// snapshot they were tagged with; the answer cache drops entries
    /// for superseded epochs (keys embed the epoch, so this is memory
    /// reclamation, not correctness — stale reuse is impossible either
    /// way).
    ///
    /// Publishing degrades gracefully: a panic during the swap or purge
    /// (injected or otherwise) is caught and retried with backoff; if
    /// retries are exhausted the snapshot is still swapped in and only
    /// the eager purge is skipped — superseded entries then cost memory
    /// until the next successful publish, never correctness.
    pub fn publish(&self, snapshot: Arc<Snapshot>) {
        use std::sync::atomic::Ordering::Relaxed;
        let epoch = snapshot.epoch();
        let mut backoff = Duration::from_millis(1);
        for _attempt in 0..3 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                hdl_base::failpoint_fire!("service::publish");
                *lock_recover(&self.shared.snapshot) = Arc::clone(&snapshot);
                self.shared.cache.retain_epoch(epoch);
            }));
            match result {
                Ok(()) => {
                    self.shared.stats.snapshots_published.fetch_add(1, Relaxed);
                    return;
                }
                Err(_) => {
                    self.shared.stats.panics_recovered.fetch_add(1, Relaxed);
                    self.shared.stats.retries.fetch_add(1, Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
            }
        }
        // Last resort: swap without the eager purge (stale entries are
        // unreachable by construction — their keys carry old epochs).
        *lock_recover(&self.shared.snapshot) = snapshot;
        self.shared.stats.snapshots_published.fetch_add(1, Relaxed);
    }

    /// The snapshot new submissions will run against.
    pub fn current_snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&lock_recover(&self.shared.snapshot))
    }

    /// A point-in-time view of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.shared.stats.snapshot();
        let (hits, misses) = self.shared.cache.counters();
        s.cache_hits = hits;
        s.cache_misses = misses;
        s.cache_entries = self.shared.cache.len() as u64;
        if let Some(r) = *lock_recover(&self.shared.recovery) {
            s.recovered = true;
            s.recovery_checkpoint_epoch = r.checkpoint_epoch;
            s.recovery_records_replayed = r.records_replayed;
            s.recovery_records_truncated = r.records_truncated;
        }
        s
    }

    /// Records what a durable host restored on startup; the report shows
    /// up in every subsequent [`stats`](Self::stats) snapshot.
    pub fn set_recovery(
        &self,
        checkpoint_epoch: u64,
        records_replayed: u64,
        records_truncated: u64,
    ) {
        *lock_recover(&self.shared.recovery) = Some(RecoveryInfo {
            checkpoint_epoch,
            records_replayed,
            records_truncated,
        });
    }

    /// Drains the queue, stops the workers, and joins them.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        {
            let mut q = lock_recover(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Engines a worker keeps alive for the snapshot it is currently
/// serving; built lazily, so a pure top-down workload never pays for a
/// bottom-up model (and vice versa).
#[derive(Default)]
struct Engines<'rb> {
    top_down: Option<TopDownEngine<'rb>>,
    bottom_up: Option<BottomUpEngine<'rb>>,
    magic: Option<MagicEngine<'rb>>,
}

/// Spawns one worker thread. The thread supervises its own loop: a
/// panic that escapes per-job isolation (e.g. an injected fault at
/// `service::worker_start`) restarts the loop with fresh engines after
/// a short backoff, so the pool never silently shrinks.
fn spawn_worker(shared: &Arc<Shared>, widx: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("hdl-worker-{widx}"))
        .stack_size(DEEP_STACK_BYTES)
        .spawn(move || {
            use std::sync::atomic::Ordering::Relaxed;
            let mut backoff = Duration::from_millis(1);
            loop {
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    hdl_base::failpoint_fire!("service::worker_start");
                    worker_loop(&shared, widx);
                }));
                match ran {
                    // Clean exit: shutdown drained the queue.
                    Ok(()) => return,
                    Err(_) => {
                        shared.stats.workers_respawned.fetch_add(1, Relaxed);
                        if lock_recover(&shared.queue).shutdown {
                            return;
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(50));
                    }
                }
            }
        })
        .expect("spawn service worker")
}

fn worker_loop(shared: &Shared, widx: usize) {
    // A job whose snapshot differs from the one the current engines
    // serve; carried across the engine-rebuild boundary below.
    let mut pending: Option<Job> = None;
    loop {
        let Some(first) = pending.take().or_else(|| shared.wait_pop()) else {
            return;
        };
        // Pin this scope to the job's snapshot. Workers intern
        // query-only constants into a private extension of the frozen
        // symbol table; the engines borrow the snapshot's rulebase, so
        // they are declared after `snap` (dropped before it).
        let snap = Arc::clone(&first.snapshot);
        let mut symbols = snap.symbols().clone();
        let mut engines = Engines::default();
        let mut job = Some(first);
        while let Some(j) = job.take() {
            if !Arc::ptr_eq(&j.snapshot, &snap) && j.snapshot.epoch() != snap.epoch() {
                pending = Some(j);
                break;
            }
            let started = Instant::now();
            let outcome = run_job(shared, &snap, &mut symbols, &mut engines, &j);
            shared.stats.add_busy(widx, started.elapsed());
            count_outcome(shared, &outcome);
            // A dropped ticket is fine — the answer is simply unread.
            let _ = j.reply.send(outcome);
            job = shared.wait_pop();
        }
        if pending.is_none() {
            // Shutdown drained the queue.
            return;
        }
    }
}

/// Renders a caught panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one job under panic isolation with a bounded retry budget.
///
/// A panic anywhere in parsing or evaluation is caught here; the
/// worker's symbol extension and engines are rebuilt from the snapshot
/// (their memo tables may be mid-mutation), and the job is retried with
/// capped exponential backoff. Exhausted retries resolve the job to
/// [`Outcome::Error`] carrying the panic payload — the caller always
/// gets a structured outcome, never a hang or a crashed pool.
///
/// `AssertUnwindSafe` is sound because everything the closure can leave
/// inconsistent is discarded on the error path (symbols, engines), and
/// the shared state it touches (cache, stats) only uses single-call
/// atomic operations.
fn run_job<'rb>(
    shared: &Shared,
    snap: &'rb Snapshot,
    symbols: &mut SymbolTable,
    engines: &mut Engines<'rb>,
    job: &Job,
) -> Outcome {
    use std::sync::atomic::Ordering::Relaxed;
    let retry_budget = job.request.retries.unwrap_or(shared.config.retries);
    let mut backoff = Duration::from_millis(1);
    let mut attempt = 0u32;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            process(shared, snap, symbols, engines, job)
        }));
        match result {
            Ok(outcome) => return outcome,
            Err(payload) => {
                shared.stats.panics_recovered.fetch_add(1, Relaxed);
                *symbols = snap.symbols().clone();
                *engines = Engines::default();
                if job.token.is_cancelled() {
                    return Outcome::Cancelled;
                }
                if attempt >= retry_budget {
                    return Outcome::Error(format!(
                        "query panicked: {}",
                        panic_message(payload.as_ref())
                    ));
                }
                attempt += 1;
                shared.stats.retries.fetch_add(1, Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(20));
            }
        }
    }
}

fn count_outcome(shared: &Shared, outcome: &Outcome) {
    use std::sync::atomic::Ordering::Relaxed;
    let stats = &shared.stats;
    stats.queries.fetch_add(1, Relaxed);
    match outcome {
        Outcome::Cancelled => stats.cancelled.fetch_add(1, Relaxed),
        Outcome::DeadlineExceeded => stats.deadline_exceeded.fetch_add(1, Relaxed),
        Outcome::MemoryExceeded => stats.memory_trips.fetch_add(1, Relaxed),
        Outcome::Overloaded => stats.shed.fetch_add(1, Relaxed),
        Outcome::Partial { reason, .. } => match reason.as_str() {
            "cancelled" => stats.cancelled.fetch_add(1, Relaxed),
            "deadline-exceeded" => stats.deadline_exceeded.fetch_add(1, Relaxed),
            "memory-exceeded" => stats.memory_trips.fetch_add(1, Relaxed),
            _ => stats.errors.fetch_add(1, Relaxed),
        },
        Outcome::Error(_) => stats.errors.fetch_add(1, Relaxed),
        _ => 0,
    };
}

/// Whether `atom` matches anywhere in `model` (existential over free
/// variables — the engines' query convention).
fn model_exists(model: &hdl_base::Database, atom: &hdl_base::Atom) -> bool {
    let mut bindings =
        hdl_base::Bindings::new(atom.vars().map(|v| v.index() + 1).max().unwrap_or(0));
    model.for_each_match(atom, &mut bindings, |_| true)
}

/// All tuples of `pattern` in `model`, rendered through `symbols` —
/// sorted and deduplicated exactly like the engines' `answers`.
fn model_rows(
    model: &hdl_base::Database,
    pattern: &hdl_base::Atom,
    symbols: &SymbolTable,
) -> Vec<Vec<String>> {
    let mut bindings =
        hdl_base::Bindings::new(pattern.vars().map(|v| v.index() + 1).max().unwrap_or(0));
    let mut rows: Vec<Vec<hdl_base::Symbol>> = Vec::new();
    model.for_each_match(pattern, &mut bindings, |b| {
        rows.push(
            pattern
                .args
                .iter()
                .map(|t| match t {
                    hdl_base::Term::Const(c) => *c,
                    hdl_base::Term::Var(v) => b.get(*v).expect("bound by match"),
                })
                .collect(),
        );
        false
    });
    rows.sort();
    rows.dedup();
    rows.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|s| symbols.name(s).to_owned())
                .collect()
        })
        .collect()
}

/// Strips optional `?-` / trailing `.` dressing so batch files and API
/// callers can write goals either way.
fn normalize_goal(text: &str) -> String {
    let mut core = text.trim();
    core = core.strip_prefix("?-").unwrap_or(core).trim();
    core = core.strip_suffix('.').unwrap_or(core).trim_end();
    format!("?- {core}.")
}

/// The memory limits for one job: service-wide defaults, with the
/// per-request fact cap taking precedence.
fn memory_limits_for(config: &ServiceConfig, request: &QueryRequest) -> MemoryLimits {
    MemoryLimits {
        max_facts: request.max_facts.or(config.max_facts),
        max_goal_set: config.max_goal_set,
        max_overlay_depth: config.max_overlay_depth,
    }
}

fn process<'rb>(
    shared: &Shared,
    snap: &'rb Snapshot,
    symbols: &mut SymbolTable,
    engines: &mut Engines<'rb>,
    job: &Job,
) -> Outcome {
    // Parse in the worker's private symbol extension.
    let (tag, text) = match &job.request.kind {
        RequestKind::Ask(text) => ("ask", text),
        RequestKind::Answers(pattern) => ("rows", pattern),
    };
    let query = match parse_query(&normalize_goal(text), symbols) {
        Ok(q) => q,
        Err(e) => return Outcome::Error(e.to_string()),
    };
    if tag == "rows" && !matches!(query, Premise::Atom(_)) {
        return Outcome::Error("answers takes a plain atom pattern".into());
    }

    // A snapshot published with a materialized model answers plain and
    // negated atom queries by membership — no engine, no fixpoint, no
    // cache entry needed. Hypothetical queries still need overlay
    // evaluation and fall through. Query-only constants interned into
    // the worker's private extension can never appear in the model, so
    // membership stays correct for them (it is simply false).
    if let Some(model) = snap.model() {
        match &query {
            Premise::Atom(atom) if tag == "ask" => {
                return if model_exists(model, atom) {
                    Outcome::True
                } else {
                    Outcome::False
                };
            }
            Premise::Neg(atom) => {
                return if model_exists(model, atom) {
                    Outcome::False
                } else {
                    Outcome::True
                };
            }
            Premise::Atom(atom) => return Outcome::Answers(model_rows(model, atom, symbols)),
            Premise::Hyp { .. } => {}
        }
    }

    // Ensure the engine for this (snapshot, kind) pair exists; a
    // stratification failure is a property of the snapshot, reported
    // per query.
    let engine = job.request.engine;
    let base_db = match ensure_engine(engines, snap, engine) {
        Ok(db) => db,
        Err(e) => return Outcome::Error(e.to_string()),
    };

    // Canonical key: pretty-printing normalizes whitespace and
    // alpha-renames variables, so textual variants of one goal share a
    // cache entry across all workers. The negative-delta fingerprint
    // distinguishes deletion overlays whose DbId could alias a
    // positive-only database with the same canonical set.
    let neg_fingerprint = match engine {
        EngineKind::TopDown => {
            let eng = engines.top_down.as_ref().expect("engine ensured");
            eng.context().dbs.neg_fingerprint(base_db)
        }
        EngineKind::BottomUp => {
            let eng = engines.bottom_up.as_ref().expect("engine ensured");
            eng.context().dbs.neg_fingerprint(base_db)
        }
        EngineKind::Magic => {
            let eng = engines.magic.as_ref().expect("engine ensured");
            eng.context().dbs.neg_fingerprint(base_db)
        }
    };
    let key = CacheKey {
        epoch: snap.epoch(),
        engine,
        db: base_db,
        neg_fingerprint,
        goal: format!("{tag} {}", pretty::premise(&query, symbols)),
    };
    if let Some(cached) = shared.cache.get(&key) {
        return cached;
    }

    let mut budget = Budget::unlimited()
        .with_token(job.token.clone())
        .with_memory_limits(memory_limits_for(&shared.config, &job.request));
    if let Some(d) = job.request.deadline {
        budget = budget.with_deadline(d);
    }

    // `expect("engine ensured")` below is a documented invariant, not a
    // recoverable condition: `ensure_engine` succeeded above for this
    // exact `engine` kind, so the slot is `Some`. (If it ever trips, the
    // per-job `catch_unwind` still contains it.)
    let outcome = match (&job.request.kind, engine) {
        (RequestKind::Ask(_), EngineKind::TopDown) => {
            let eng = engines.top_down.as_mut().expect("engine ensured");
            eng.set_budget(budget);
            Outcome::from_verdict(eng.holds(&query))
        }
        (RequestKind::Ask(_), EngineKind::BottomUp) => {
            let eng = engines.bottom_up.as_mut().expect("engine ensured");
            eng.set_budget(budget);
            Outcome::from_verdict(eng.holds(&query))
        }
        (RequestKind::Ask(_), EngineKind::Magic) => {
            let eng = engines.magic.as_mut().expect("engine ensured");
            eng.set_budget(budget);
            Outcome::from_verdict(eng.holds(&query))
        }
        (RequestKind::Answers(_), _) => {
            let Premise::Atom(atom) = &query else {
                unreachable!("checked above")
            };
            let (rows, trip) = match engine {
                EngineKind::TopDown => {
                    let eng = engines.top_down.as_mut().expect("engine ensured");
                    eng.set_budget(budget);
                    eng.answers_partial(atom)
                }
                EngineKind::BottomUp => {
                    let eng = engines.bottom_up.as_mut().expect("engine ensured");
                    eng.set_budget(budget);
                    eng.answers_partial(atom)
                }
                EngineKind::Magic => {
                    let eng = engines.magic.as_mut().expect("engine ensured");
                    eng.set_budget(budget);
                    eng.answers_partial(atom)
                }
            };
            let rows: Vec<Vec<String>> = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|s| symbols.name(s).to_owned())
                        .collect()
                })
                .collect();
            match trip {
                None => Outcome::Answers(rows),
                // Trip with nothing proven: plain structured trip.
                Some(e) if rows.is_empty() => Outcome::from_error(e),
                // Trip mid-scan: degrade to the sound partial answer set
                // instead of discarding proven tuples.
                Some(e) => Outcome::Partial {
                    rows,
                    reason: Outcome::from_error(e).to_string(),
                },
            }
        }
    };

    // Budget trips and errors are never cached (put refuses them too).
    shared.cache.put(key, outcome.clone());
    outcome
}

/// Builds the requested engine for the current snapshot if missing and
/// returns the base database id (part of the cache key).
fn ensure_engine<'rb>(
    engines: &mut Engines<'rb>,
    snap: &'rb Snapshot,
    kind: EngineKind,
) -> hdl_base::Result<hdl_base::DbId> {
    match kind {
        EngineKind::TopDown => {
            if engines.top_down.is_none() {
                engines.top_down = Some(TopDownEngine::new(snap.rulebase(), snap.database())?);
            }
            Ok(engines
                .top_down
                .as_ref()
                .expect("just built")
                .context()
                .base_db)
        }
        EngineKind::BottomUp => {
            if engines.bottom_up.is_none() {
                engines.bottom_up = Some(BottomUpEngine::new(snap.rulebase(), snap.database())?);
            }
            Ok(engines
                .bottom_up
                .as_ref()
                .expect("just built")
                .context()
                .base_db)
        }
        EngineKind::Magic => {
            if engines.magic.is_none() {
                engines.magic = Some(MagicEngine::new(snap.rulebase(), snap.database())?);
            }
            Ok(engines
                .magic
                .as_ref()
                .expect("just built")
                .context()
                .base_db)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn university() -> Arc<Snapshot> {
        Snapshot::from_program(
            "take(tony, his101).
             grad(S) :- take(S, his101), take(S, eng201).
             eligible(S) :- grad(S)[add: take(S, eng201)].",
        )
        .unwrap()
    }

    #[test]
    fn normalize_accepts_all_dressings() {
        assert_eq!(normalize_goal("p(a)"), "?- p(a).");
        assert_eq!(normalize_goal("p(a)."), "?- p(a).");
        assert_eq!(normalize_goal("?- p(a)."), "?- p(a).");
        assert_eq!(normalize_goal("  ?-  p(a) . "), "?- p(a).");
    }

    #[test]
    fn ask_and_answers_through_the_pool() {
        let service = QueryService::new(university(), 2);
        let yes = service.submit(QueryRequest::ask("eligible(tony)"));
        let no = service.submit(QueryRequest::ask("grad(tony)"));
        let rows = service.submit(QueryRequest::answers("eligible(S)"));
        assert_eq!(yes.wait(), Outcome::True);
        assert_eq!(no.wait(), Outcome::False);
        assert_eq!(rows.wait(), Outcome::Answers(vec![vec!["tony".into()]]));
        let stats = service.stats();
        assert_eq!(stats.queries_served, 3);
        service.shutdown();
    }

    #[test]
    fn identical_queries_share_the_cache() {
        let service = QueryService::new(university(), 4);
        // Textual variants of one goal: whitespace and variable names
        // differ, the canonical key does not.
        let outcomes = service.run_batch(vec![
            QueryRequest::ask("eligible(tony)"),
            QueryRequest::ask("?-   eligible( tony ) ."),
            QueryRequest::ask("eligible(tony)."),
        ]);
        assert!(outcomes.iter().all(|o| *o == Outcome::True));
        let stats = service.stats();
        assert!(
            stats.cache_hits >= 1,
            "at least one of the repeats must hit: {stats:?}"
        );
        assert_eq!(stats.cache_hits + stats.cache_misses, 3);
    }

    #[test]
    fn batch_preserves_submission_order() {
        let service = QueryService::new(university(), 3);
        let outcomes = service.run_batch(vec![
            QueryRequest::ask("grad(tony)"),
            QueryRequest::ask("eligible(tony)"),
            QueryRequest::ask("no_such_pred(x)"),
        ]);
        assert_eq!(outcomes[0], Outcome::False);
        assert_eq!(outcomes[1], Outcome::True);
        // Unknown predicate is simply not derivable.
        assert_eq!(outcomes[2], Outcome::False);
    }

    #[test]
    fn engines_are_selectable_per_request() {
        let service = QueryService::new(university(), 2);
        let td =
            service.submit(QueryRequest::ask("eligible(tony)").with_engine(EngineKind::TopDown));
        let bu =
            service.submit(QueryRequest::ask("eligible(tony)").with_engine(EngineKind::BottomUp));
        assert_eq!(td.wait(), Outcome::True);
        assert_eq!(bu.wait(), Outcome::True);
        // Different engines never share cache entries.
        assert_eq!(service.stats().cache_hits, 0);
    }

    #[test]
    fn magic_engine_is_selectable_per_request() {
        let service = QueryService::new(university(), 2);
        let yes =
            service.submit(QueryRequest::ask("eligible(tony)").with_engine(EngineKind::Magic));
        let no = service.submit(QueryRequest::ask("grad(tony)").with_engine(EngineKind::Magic));
        let rows =
            service.submit(QueryRequest::answers("eligible(S)").with_engine(EngineKind::Magic));
        assert_eq!(yes.wait(), Outcome::True);
        assert_eq!(no.wait(), Outcome::False);
        assert_eq!(rows.wait(), Outcome::Answers(vec![vec!["tony".into()]]));
        service.shutdown();
    }

    /// Differently-adorned queries of one predicate — different bound
    /// argument positions — must never collide in the answer cache: the
    /// canonical goal text embeds the constants, so the keys differ.
    #[test]
    fn magic_adornments_never_collide_in_the_cache() {
        let service = QueryService::new(
            Snapshot::from_program(
                "edge(a, b). edge(b, c).
                 tc(X, Y) :- edge(X, Y).
                 tc(X, Z) :- tc(X, Y), edge(Y, Z).",
            )
            .unwrap(),
            1,
        );
        // Same predicate, four distinct adornments: bb, bf, fb, ff.
        let outcomes = service.run_batch(
            ["tc(a, c)", "tc(a, X)", "tc(X, c)", "tc(X, Y)"]
                .into_iter()
                .map(|q| QueryRequest::ask(q).with_engine(EngineKind::Magic))
                .collect(),
        );
        assert!(outcomes.iter().all(|o| *o == Outcome::True));
        let stats = service.stats();
        assert_eq!(
            stats.cache_hits, 0,
            "adorned variants must occupy distinct cache entries: {stats:?}"
        );
        assert_eq!(stats.cache_misses, 4);
        // ...while a repeated identical point query is served from cache.
        let again = service.submit(QueryRequest::ask("tc(a, c)").with_engine(EngineKind::Magic));
        assert_eq!(again.wait(), Outcome::True);
        assert_eq!(
            service.stats().cache_hits,
            1,
            "identical point query must hit"
        );
        service.shutdown();
    }

    #[test]
    fn parse_errors_are_structured_not_fatal() {
        let service = QueryService::new(university(), 1);
        let bad = service.submit(QueryRequest::ask("p(((("));
        assert!(matches!(bad.wait(), Outcome::Error(_)));
        // The worker survives and keeps answering.
        let ok = service.submit(QueryRequest::ask("eligible(tony)"));
        assert_eq!(ok.wait(), Outcome::True);
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn publish_switches_new_submissions() {
        let service = QueryService::new(Snapshot::from_program("p :- q.").unwrap(), 2);
        assert_eq!(
            service.submit(QueryRequest::ask("p")).wait(),
            Outcome::False
        );
        service.publish(Snapshot::from_program("p :- q. q.").unwrap());
        assert_eq!(service.submit(QueryRequest::ask("p")).wait(), Outcome::True);
        let stats = service.stats();
        assert_eq!(stats.snapshots_published, 1);
        // The `False` under epoch 1 must not satisfy the epoch-2 query.
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn answers_pattern_must_be_atomic() {
        let service = QueryService::new(university(), 1);
        let t = service.submit(QueryRequest::answers("~grad(X)"));
        assert!(matches!(t.wait(), Outcome::Error(_)));
    }

    #[test]
    fn queue_cap_sheds_new_submissions() {
        // No workers can drain the queue faster than we fill it here:
        // the capacity check happens at submit time under the lock, so a
        // zero-cap config sheds everything deterministically.
        let service = QueryService::with_config(
            university(),
            ServiceConfig {
                workers: 1,
                queue_cap: Some(0),
                ..ServiceConfig::default()
            },
        );
        let t = service.submit(QueryRequest::ask("eligible(tony)"));
        assert_eq!(t.wait(), Outcome::Overloaded);
        let stats = service.stats();
        assert_eq!(stats.shed, 1);
        // A shed ticket still resolved, so it counts as served: the
        // outcome counters must always sum into `queries_served`.
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn recovery_report_is_merged_into_stats() {
        let service = QueryService::new(university(), 1);
        assert!(!service.stats().recovered);
        service.set_recovery(3, 12, 1);
        let stats = service.stats();
        assert!(stats.recovered);
        assert_eq!(stats.recovery_checkpoint_epoch, 3);
        assert_eq!(stats.recovery_records_replayed, 12);
        assert_eq!(stats.recovery_records_truncated, 1);
    }
}
