//! Structured results of service queries.

use hdl_base::Error;
use std::fmt;

/// The result of one service query — never a hang: budget trips surface
/// as [`Outcome::Cancelled`] / [`Outcome::DeadlineExceeded`] instead of
/// an unbounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The query is provable.
    True,
    /// The query is not provable.
    False,
    /// All tuples satisfying an `answers` pattern, rendered as names.
    Answers(Vec<Vec<String>>),
    /// The query was cancelled through its ticket's token.
    Cancelled,
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded,
    /// The query exceeded a configured memory budget (fact count,
    /// goal-set size, or overlay depth) and was abandoned to keep the
    /// process bounded.
    MemoryExceeded,
    /// The submission was rejected because the job queue was at its
    /// configured capacity (load shedding); the query never ran.
    Overloaded,
    /// An `answers` query tripped its budget mid-scan: `rows` are the
    /// tuples fully proven before the trip (sound but incomplete),
    /// `reason` names the trip (`cancelled`, `deadline-exceeded`,
    /// `memory-exceeded`, …).
    Partial {
        /// Tuples proven before the budget tripped.
        rows: Vec<Vec<String>>,
        /// Rendered trip reason.
        reason: String,
    },
    /// The query failed (parse error, stratification error, limits…).
    Error(String),
}

impl Outcome {
    /// Converts an engine verdict, mapping budget errors to their
    /// structured outcomes.
    pub fn from_verdict(r: hdl_base::Result<bool>) -> Self {
        match r {
            Ok(true) => Outcome::True,
            Ok(false) => Outcome::False,
            Err(e) => Outcome::from_error(e),
        }
    }

    /// Maps an engine error to its structured outcome (budget trips get
    /// dedicated variants; everything else is [`Outcome::Error`]).
    pub fn from_error(e: Error) -> Self {
        match e {
            Error::Cancelled => Outcome::Cancelled,
            Error::DeadlineExceeded => Outcome::DeadlineExceeded,
            Error::ResourceExhausted { .. } => Outcome::MemoryExceeded,
            other => Outcome::Error(other.to_string()),
        }
    }

    /// Whether this outcome is a definitive answer (safe to cache and
    /// reuse for identical queries against the same snapshot).
    pub fn is_definitive(&self) -> bool {
        matches!(self, Outcome::True | Outcome::False | Outcome::Answers(_))
    }

    /// One stable result line, as emitted by `hdl batch` / `hdl serve`.
    pub fn render_line(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::True => write!(f, "true"),
            Outcome::False => write!(f, "false"),
            Outcome::Answers(rows) => {
                if rows.is_empty() {
                    return write!(f, "(0 answers)");
                }
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", row.join(", "))?;
                }
                write!(f, " ({} answers)", rows.len())
            }
            Outcome::Cancelled => write!(f, "cancelled"),
            Outcome::DeadlineExceeded => write!(f, "deadline-exceeded"),
            Outcome::MemoryExceeded => write!(f, "memory-exceeded"),
            Outcome::Overloaded => write!(f, "overloaded"),
            Outcome::Partial { rows, reason } => {
                if rows.is_empty() {
                    return write!(f, "(0 answers; partial: {reason})");
                }
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", row.join(", "))?;
                }
                write!(f, " ({} answers; partial: {reason})", rows.len())
            }
            Outcome::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_mapping() {
        assert_eq!(Outcome::from_verdict(Ok(true)), Outcome::True);
        assert_eq!(Outcome::from_verdict(Ok(false)), Outcome::False);
        assert_eq!(
            Outcome::from_verdict(Err(Error::Cancelled)),
            Outcome::Cancelled
        );
        assert_eq!(
            Outcome::from_verdict(Err(Error::DeadlineExceeded)),
            Outcome::DeadlineExceeded
        );
        assert!(matches!(
            Outcome::from_verdict(Err(Error::Invalid("x".into()))),
            Outcome::Error(_)
        ));
    }

    #[test]
    fn only_answers_are_definitive() {
        assert!(Outcome::True.is_definitive());
        assert!(Outcome::Answers(vec![]).is_definitive());
        assert!(!Outcome::Cancelled.is_definitive());
        assert!(!Outcome::DeadlineExceeded.is_definitive());
        assert!(!Outcome::MemoryExceeded.is_definitive());
        assert!(!Outcome::Overloaded.is_definitive());
        assert!(!Outcome::Partial {
            rows: vec![vec!["a".into()]],
            reason: "cancelled".into()
        }
        .is_definitive());
        assert!(!Outcome::Error("e".into()).is_definitive());
    }

    #[test]
    fn resource_errors_map_to_memory_exceeded() {
        assert_eq!(
            Outcome::from_verdict(Err(Error::ResourceExhausted {
                resource: "facts".into(),
                limit: 10
            })),
            Outcome::MemoryExceeded
        );
        assert_eq!(Outcome::MemoryExceeded.render_line(), "memory-exceeded");
        assert_eq!(Outcome::Overloaded.render_line(), "overloaded");
        let partial = Outcome::Partial {
            rows: vec![vec!["a".into(), "b".into()]],
            reason: "deadline-exceeded".into(),
        };
        assert_eq!(
            partial.render_line(),
            "a, b (1 answers; partial: deadline-exceeded)"
        );
    }

    #[test]
    fn render_lines_are_stable() {
        assert_eq!(Outcome::True.render_line(), "true");
        assert_eq!(Outcome::DeadlineExceeded.render_line(), "deadline-exceeded");
        let rows = Outcome::Answers(vec![
            vec!["a".into(), "b".into()],
            vec!["c".into(), "d".into()],
        ]);
        assert_eq!(rows.render_line(), "a, b; c, d (2 answers)");
    }
}
