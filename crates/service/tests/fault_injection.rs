//! Deterministic fault injection against the query service.
//!
//! Compiled only with `--features failpoints`. Each test arms a seeded
//! set of failure sites (panics, delays, spurious resource errors)
//! threaded through the service and engines, then asserts the service
//! *degrades* rather than dies: every submitted job resolves to a
//! structured [`Outcome`], no injected fault escapes as a process
//! abort, and the recovery counters account for what happened.
#![cfg(feature = "failpoints")]

use hdl_base::failpoint::{self, FaultSpec};
use hdl_core::engine::ProveEngine;
use hdl_core::parser::parse_query;
use hdl_core::session::EngineKind;
use hdl_core::snapshot::Snapshot;
use hdl_service::{Outcome, QueryRequest, QueryService, ServiceConfig};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// The failpoint registry is process-global; tests must not interleave.
/// The guard also clears the registry on drop, so a failing test cannot
/// leak armed faults into the next one.
struct FaultLab {
    _guard: MutexGuard<'static, ()>,
}

impl FaultLab {
    fn begin() -> Self {
        static GUARD: Mutex<()> = Mutex::new(());
        static HOOK: OnceLock<()> = OnceLock::new();
        // Injected panics are caught by the service, but the default
        // hook would still spray their backtraces over the test output.
        // Silence exactly those; real panics keep reporting.
        HOOK.get_or_init(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("failpoint '"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|m| m.contains("failpoint '"));
                if !injected {
                    default(info);
                }
            }));
        });
        let guard = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        failpoint::clear();
        FaultLab { _guard: guard }
    }
}

impl Drop for FaultLab {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn university() -> Arc<Snapshot> {
    Snapshot::from_program(
        "take(tony, his101).
         take(ann, his101).
         take(ann, eng201).
         grad(S) :- take(S, his101), take(S, eng201).
         eligible(S) :- grad(S)[add: take(S, eng201)].",
    )
    .unwrap()
}

/// A 4-variable ∃/∀ XOR-chain QBF (false), linearly stratified, for
/// driving the PROVE engine's Σ/Δ failpoint sites.
fn qbf_snapshot() -> Arc<Snapshot> {
    use hdl_encodings::qbf::build::{n, p};
    use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
    let prefix = (0..4)
        .map(|v| {
            let q = if v % 2 == 0 {
                Quant::Exists
            } else {
                Quant::Forall
            };
            (q, vec![v])
        })
        .collect();
    let mut clauses = Vec::new();
    for v in 0..3 {
        clauses.push(vec![p(v), p(v + 1)]);
        clauses.push(vec![n(v), n(v + 1)]);
    }
    let enc = encode_qbf(&Qbf { prefix, clauses }).unwrap();
    Snapshot::new(enc.symbols, enc.rulebase, enc.database)
}

/// Every injection site the service and engines expose.
const ALL_SITES: &[&str] = &[
    "service::worker_start",
    "service::publish",
    "cache::get",
    "cache::put",
    "cache::purge",
    "topdown::prove",
    "bottomup::round",
    "prove::sigma",
    "prove::delta_round",
];

#[test]
fn hundred_query_batch_survives_panics_at_every_site() {
    let _lab = FaultLab::begin();
    for (i, site) in ALL_SITES.iter().enumerate() {
        // Rare enough that most jobs eventually succeed within the
        // retry budget, common enough that every site fires.
        failpoint::configure(site, FaultSpec::panicking(7), 0xBAD5EED + i as u64);
    }

    let service = QueryService::with_config(
        university(),
        ServiceConfig {
            workers: 3,
            retries: 50,
            ..ServiceConfig::default()
        },
    );
    let requests: Vec<QueryRequest> = (0..100)
        .map(|i| match i % 3 {
            0 => QueryRequest::ask("eligible(tony)"),
            1 => QueryRequest::ask("grad(ann)").with_engine(EngineKind::BottomUp),
            _ => QueryRequest::answers("eligible(S)"),
        })
        .collect();
    let outcomes = service.run_batch(requests);

    // Zero process aborts (we are still here) and a structured outcome
    // for every job — with a generous retry budget, the correct one.
    assert_eq!(outcomes.len(), 100);
    for (i, o) in outcomes.iter().enumerate() {
        match i % 3 {
            0 => assert_eq!(*o, Outcome::True, "query {i}"),
            1 => assert_eq!(*o, Outcome::True, "query {i}"),
            _ => assert!(matches!(o, Outcome::Answers(_)), "query {i}: {o:?}"),
        }
    }

    let stats = service.stats();
    assert!(
        stats.panics_recovered > 0,
        "injected panics must be visible in stats: {stats:?}"
    );
    assert!(stats.retries > 0);

    // The service only drives the top-down and bottom-up engines;
    // exercise PROVE's Σ/Δ sites directly under the same armed faults
    // with the same containment contract: panics are caught, the engine
    // is rebuilt, and the query eventually answers.
    // Cap the PROVE faults: a query makes hundreds of Σ/Δ probes, so an
    // uncapped 1-in-7 panic rate would never let one finish.
    failpoint::configure("prove::sigma", FaultSpec::panicking(3).fires(4), 101);
    failpoint::configure("prove::delta_round", FaultSpec::panicking(3).fires(4), 103);
    let qbf = qbf_snapshot();
    let mut symbols = qbf.symbols().clone();
    let query = parse_query("?- sat_1.", &mut symbols).unwrap();
    let mut verdict = None;
    for _ in 0..200 {
        let mut eng = ProveEngine::new(qbf.rulebase(), qbf.database()).unwrap();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eng.holds(&query))) {
            Ok(Ok(v)) => {
                verdict = Some(v);
                break;
            }
            Ok(Err(_)) | Err(_) => continue,
        }
    }
    assert_eq!(
        verdict,
        Some(false),
        "PROVE must eventually answer despite injected faults"
    );

    // `service::publish` and `cache::purge` only fire on publishes,
    // covered by `publish_survives_injected_panics`.
    for site in ALL_SITES {
        let (hits, _) = failpoint::counters(site);
        if *site != "service::publish" && *site != "cache::purge" {
            assert!(hits > 0, "site {site} was never reached");
        }
    }

    // Disarmed, the pool answers normally — no corruption lingers.
    failpoint::clear();
    let control = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    assert_eq!(control, Outcome::True);
    service.shutdown();
}

#[test]
fn worker_start_panic_respawns_the_worker() {
    let _lab = FaultLab::begin();
    failpoint::configure(
        "service::worker_start",
        FaultSpec::panicking(1).fires(1),
        42,
    );
    let service = QueryService::new(university(), 1);
    // The sole worker panicked on startup; its respawn loop must bring
    // it back or this wait would hang (deadline guards the assertion).
    let outcome = service
        .submit(QueryRequest::ask("eligible(tony)").with_deadline(Duration::from_secs(30)))
        .wait();
    assert_eq!(outcome, Outcome::True);
    assert!(service.stats().workers_respawned >= 1);
    service.shutdown();
}

#[test]
fn spurious_resource_errors_surface_as_memory_exceeded_and_are_not_cached() {
    let _lab = FaultLab::begin();
    failpoint::configure("topdown::prove", FaultSpec::erroring(1).fires(1), 7);
    let service = QueryService::new(university(), 1);
    let first = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    assert_eq!(first, Outcome::MemoryExceeded);
    let stats = service.stats();
    assert_eq!(stats.memory_trips, 1);
    assert_eq!(stats.cache_entries, 0, "trips must not be cached");
    // The failpoint is spent; the same query now succeeds.
    let second = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    assert_eq!(second, Outcome::True);
    service.shutdown();
}

#[test]
fn injected_delays_lose_no_jobs() {
    let _lab = FaultLab::begin();
    failpoint::configure("cache::get", FaultSpec::delaying(5, 2), 11);
    failpoint::configure("topdown::prove", FaultSpec::delaying(1, 50), 13);
    let service = QueryService::new(university(), 2);
    let outcomes = service.run_batch(
        (0..20)
            .map(|_| QueryRequest::ask("eligible(tony)"))
            .collect(),
    );
    assert!(outcomes.iter().all(|o| *o == Outcome::True));
    assert_eq!(service.stats().queries_served, 20);
    service.shutdown();
}

#[test]
fn single_panic_is_retried_to_success() {
    let _lab = FaultLab::begin();
    failpoint::configure("topdown::prove", FaultSpec::panicking(1).fires(1), 3);
    let service = QueryService::new(university(), 1);
    let outcome = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    assert_eq!(outcome, Outcome::True);
    let stats = service.stats();
    assert_eq!(stats.panics_recovered, 1);
    assert_eq!(stats.retries, 1);
    service.shutdown();
}

#[test]
fn exhausted_retries_resolve_to_a_structured_error() {
    let _lab = FaultLab::begin();
    // Panic on every probe: retries cannot save this query.
    failpoint::configure("topdown::prove", FaultSpec::panicking(1), 5);
    let service = QueryService::with_config(
        university(),
        ServiceConfig {
            workers: 1,
            retries: 2,
            ..ServiceConfig::default()
        },
    );
    let outcome = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    match outcome {
        Outcome::Error(msg) => assert!(
            msg.contains("panicked") && msg.contains("failpoint"),
            "error must carry the panic payload: {msg}"
        ),
        other => panic!("expected a structured error, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.panics_recovered, 3, "initial attempt + 2 retries");
    assert_eq!(stats.retries, 2);

    // The worker survives exhausted retries.
    failpoint::clear();
    let ok = service.submit(QueryRequest::ask("eligible(tony)")).wait();
    assert_eq!(ok, Outcome::True);
    service.shutdown();
}

#[test]
fn publish_survives_injected_panics() {
    let _lab = FaultLab::begin();
    let service = QueryService::new(Snapshot::from_program("p :- q.").unwrap(), 1);
    assert_eq!(
        service.submit(QueryRequest::ask("p")).wait(),
        Outcome::False
    );

    // First publish attempt panics at the publish site, the second
    // inside the cache purge; the third lands the snapshot.
    failpoint::configure("service::publish", FaultSpec::panicking(1).fires(1), 17);
    failpoint::configure("cache::purge", FaultSpec::panicking(1).fires(1), 19);
    service.publish(Snapshot::from_program("p :- q. q.").unwrap());
    assert_eq!(service.submit(QueryRequest::ask("p")).wait(), Outcome::True);
    let stats = service.stats();
    assert_eq!(stats.snapshots_published, 1);
    assert_eq!(stats.panics_recovered, 2);
    service.shutdown();
}

#[test]
fn cache_faults_cannot_poison_shared_state() {
    let _lab = FaultLab::begin();
    // Panic inside cache operations: the lock-poison recovery plus
    // per-job isolation must keep every outcome correct.
    failpoint::configure("cache::put", FaultSpec::panicking(2), 23);
    failpoint::configure("cache::get", FaultSpec::panicking(5), 29);
    let service = QueryService::with_config(
        university(),
        ServiceConfig {
            workers: 2,
            retries: 50,
            ..ServiceConfig::default()
        },
    );
    let outcomes = service.run_batch((0..30).map(|_| QueryRequest::ask("grad(ann)")).collect());
    assert!(outcomes.iter().all(|o| *o == Outcome::True), "{outcomes:?}");
    failpoint::clear();
    assert_eq!(
        service.submit(QueryRequest::ask("grad(ann)")).wait(),
        Outcome::True
    );
    service.shutdown();
}

#[test]
fn stats_render_the_recovery_counters() {
    let _lab = FaultLab::begin();
    failpoint::configure("topdown::prove", FaultSpec::panicking(1).fires(1), 31);
    let service = QueryService::new(university(), 1);
    assert_eq!(
        service.submit(QueryRequest::ask("eligible(tony)")).wait(),
        Outcome::True
    );
    let rendered = service.stats().to_string();
    assert!(
        rendered.contains("panics recovered    1 (1 retries, 0 workers respawned)"),
        "stats must surface recovery counters:\n{rendered}"
    );
    assert!(rendered.contains("memory trips"), "{rendered}");
    service.shutdown();
}
