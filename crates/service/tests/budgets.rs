//! Budget enforcement against deliberately exponential workloads.
//!
//! The QBF instance is an alternating ∃/∀ XOR chain: refuting it forces
//! the engine to exhaust an exponential assignment tree (about a second
//! of single-threaded work in a debug build at 18 variables), which is
//! exactly the shape of query a service must be able to abandon.

use hdl_base::Error;
use hdl_core::engine::{Budget, CancelToken, ProveEngine, TopDownEngine};
use hdl_core::parser::parse_query;
use hdl_core::session::EngineKind;
use hdl_core::snapshot::Snapshot;
use hdl_encodings::qbf::build::{n, p};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use hdl_service::{Outcome, QueryRequest, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// ∃x₀ ∀x₁ ∃x₂ … with clauses `(xᵢ ∨ xᵢ₊₁) ∧ (¬xᵢ ∨ ¬xᵢ₊₁)` (an XOR
/// chain). False for every `vars ≥ 2`, and refutation visits the whole
/// assignment tree.
fn xor_chain(vars: usize) -> Qbf {
    let prefix = (0..vars)
        .map(|v| {
            let q = if v % 2 == 0 {
                Quant::Exists
            } else {
                Quant::Forall
            };
            (q, vec![v])
        })
        .collect();
    let mut clauses = Vec::new();
    for v in 0..vars - 1 {
        clauses.push(vec![p(v), p(v + 1)]);
        clauses.push(vec![n(v), n(v + 1)]);
    }
    Qbf { prefix, clauses }
}

fn qbf_snapshot(vars: usize) -> (Arc<Snapshot>, bool) {
    let qbf = xor_chain(vars);
    let expected = qbf.eval();
    let enc = encode_qbf(&qbf).unwrap();
    (
        Snapshot::new(enc.symbols, enc.rulebase, enc.database),
        expected,
    )
}

#[test]
fn exponential_qbf_deadline_trips_promptly() {
    let (snap, expected) = qbf_snapshot(18);
    let service = QueryService::new(snap, 2);

    // With a 10ms budget the query must come back quickly — orders of
    // magnitude under the ~1s (debug) unrestricted solve time. The
    // bound below is generous to absorb CI noise while still proving
    // the wall-clock is bounded by the deadline, not the search space.
    let started = Instant::now();
    let outcome = service
        .submit(QueryRequest::ask("sat_1").with_deadline(Duration::from_millis(10)))
        .wait();
    let elapsed = started.elapsed();
    assert_eq!(outcome, Outcome::DeadlineExceeded);
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline trip took {elapsed:?}"
    );
    assert_eq!(service.stats().deadline_exceeded, 1);

    // The cache must not have recorded the abandoned attempt: the same
    // query with no deadline still answers correctly...
    let outcome = service.submit(QueryRequest::ask("sat_1")).wait();
    assert_eq!(outcome, Outcome::from_verdict(Ok(expected)));
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0, "abandoned attempt must not be reused");
    assert_eq!(stats.cache_entries, 1);

    // ...and only the definitive answer is cached for reuse.
    let outcome = service.submit(QueryRequest::ask("sat_1")).wait();
    assert_eq!(outcome, Outcome::from_verdict(Ok(expected)));
    assert_eq!(service.stats().cache_hits, 1);
    service.shutdown();
}

#[test]
fn tickets_cancel_cooperatively() {
    let (snap, _) = qbf_snapshot(18);
    let service = QueryService::new(snap, 1);
    let started = Instant::now();
    let ticket = service.submit(QueryRequest::ask("sat_1"));
    ticket.cancel();
    let outcome = ticket.wait();
    assert_eq!(outcome, Outcome::Cancelled);
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "cancellation took {:?}",
        started.elapsed()
    );

    // The worker survives a cancelled search and keeps serving; the
    // cancelled attempt left nothing behind in the shared cache.
    let stats = service.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.cache_entries, 0);
    let easy = service.submit(QueryRequest::ask("no_such_goal")).wait();
    assert_eq!(easy, Outcome::False, "worker must still answer");
    service.shutdown();
}

#[test]
fn fact_budget_bounds_growth_on_exponential_qbf() {
    // Refuting the 18-var instance wants to intern exponentially many
    // hypothetical databases. A fact budget must stop it close to the
    // cap: the engine probes at every goal entry, so the store may
    // overshoot by at most one extension (≤ one flattened database),
    // bounded here by 2× the configured limit.
    let (snap, _) = qbf_snapshot(18);
    let mut eng = TopDownEngine::new(snap.rulebase(), snap.database()).unwrap();
    let mut symbols = snap.symbols().clone();
    let query = parse_query("?- sat_1.", &mut symbols).unwrap();

    let limit = 512u64;
    let before = eng.context().fact_footprint();
    eng.set_budget(Budget::unlimited().with_max_facts(limit));
    let err = eng.holds(&query).unwrap_err();
    assert!(
        matches!(err, Error::ResourceExhausted { .. }),
        "expected a resource trip, got {err:?}"
    );
    let grown = eng.context().fact_footprint() - before;
    assert!(grown > 0, "the search must have grown the store");
    assert!(
        grown <= 2 * limit,
        "store grew by {grown} fact slots against a cap of {limit}"
    );
}

#[test]
fn memory_budget_trips_through_the_service() {
    let (snap, _) = qbf_snapshot(18);
    let service = QueryService::new(snap, 1);
    let started = Instant::now();
    let outcome = service
        .submit(QueryRequest::ask("sat_1").with_max_facts(512))
        .wait();
    assert_eq!(outcome, Outcome::MemoryExceeded);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "memory trip took {:?}",
        started.elapsed()
    );
    let stats = service.stats();
    assert_eq!(stats.memory_trips, 1);
    // The trip is not definitive: nothing was cached, and the worker
    // survives to answer the next query.
    assert_eq!(stats.cache_entries, 0);
    let easy = service.submit(QueryRequest::ask("no_such_goal")).wait();
    assert_eq!(easy, Outcome::False);
    service.shutdown();
}

#[test]
fn service_wide_fact_budget_applies_without_request_caps() {
    let (snap, _) = qbf_snapshot(18);
    let service = QueryService::with_config(
        snap,
        ServiceConfig {
            max_facts: Some(512),
            ..ServiceConfig::default()
        },
    );
    let outcome = service.submit(QueryRequest::ask("sat_1")).wait();
    assert_eq!(outcome, Outcome::MemoryExceeded);
    assert_eq!(service.stats().memory_trips, 1);
    service.shutdown();
}

#[test]
fn bottom_up_cancels_mid_evaluation() {
    // Whole-query cancellation is covered above for the (default)
    // top-down engine; this pins the bottom-up fixpoint rounds to the
    // same contract: a cancel arriving mid-stratum unwinds promptly.
    let (snap, _) = qbf_snapshot(18);
    let service = QueryService::new(snap, 1);
    let ticket = service.submit(QueryRequest::ask("sat_1").with_engine(EngineKind::BottomUp));
    std::thread::sleep(Duration::from_millis(50));
    let cancelled_at = Instant::now();
    ticket.cancel();
    let outcome = ticket.wait();
    assert_eq!(outcome, Outcome::Cancelled);
    assert!(
        cancelled_at.elapsed() < Duration::from_millis(500),
        "bottom-up cancellation took {:?}",
        cancelled_at.elapsed()
    );
    let easy = service
        .submit(QueryRequest::ask("no_such_goal").with_engine(EngineKind::BottomUp))
        .wait();
    assert_eq!(easy, Outcome::False, "worker must still answer");
    service.shutdown();
}

#[test]
fn prove_delta_rounds_observe_mid_stratum_cancellation() {
    // PROVE_Δᵢ computes stratum models in bottom-up rounds; a cancel
    // arriving while a round is in flight must unwind from inside the
    // round loop, not wait for the stratum to close.
    let (snap, _) = qbf_snapshot(18);
    let mut eng = ProveEngine::new(snap.rulebase(), snap.database()).unwrap();
    let mut symbols = snap.symbols().clone();
    let query = parse_query("?- sat_1.", &mut symbols).unwrap();

    let token = CancelToken::new();
    eng.set_budget(Budget::unlimited().with_token(token.clone()));
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let started = Instant::now();
    let err = eng.holds(&query).unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, Error::Cancelled), "got {err:?}");
    assert!(
        started.elapsed() < Duration::from_millis(800),
        "PROVE cancellation took {:?}",
        started.elapsed()
    );
}

#[test]
fn cancelled_prove_strata_are_not_memoized_as_closed() {
    // Small instance: trip the very first budget probe, then verify a
    // fresh budget recomputes the abandoned strata and answers
    // correctly — the cancelled Δ model must not have been recorded.
    let (snap, expected) = qbf_snapshot(8);
    let mut eng = ProveEngine::new(snap.rulebase(), snap.database()).unwrap();
    let mut symbols = snap.symbols().clone();
    let query = parse_query("?- sat_1.", &mut symbols).unwrap();

    let token = CancelToken::new();
    token.cancel();
    eng.set_budget(Budget::unlimited().with_token(token));
    assert!(matches!(eng.holds(&query).unwrap_err(), Error::Cancelled));

    eng.set_budget(Budget::unlimited());
    assert_eq!(eng.holds(&query).unwrap(), expected);
}

#[test]
fn bounded_queue_sheds_excess_load() {
    // Large enough that the busy query cannot finish before the cancel
    // below lands, even on fast hardware (the refutation is exponential
    // in the variable count).
    let (snap, _) = qbf_snapshot(26);
    let service = QueryService::with_config(
        snap,
        ServiceConfig {
            workers: 1,
            queue_cap: Some(2),
            ..ServiceConfig::default()
        },
    );
    // Occupy the single worker with a long refutation…
    let busy = service.submit(QueryRequest::ask("sat_1"));
    std::thread::sleep(Duration::from_millis(100));
    // …fill the queue to its cap…
    let q1 = service.submit(QueryRequest::ask("no_such_goal"));
    let q2 = service.submit(QueryRequest::ask("no_such_goal"));
    // …and overflow: these must be shed without running.
    let s1 = service.submit(QueryRequest::ask("no_such_goal"));
    let s2 = service.submit(QueryRequest::ask("no_such_goal"));
    assert_eq!(s1.wait(), Outcome::Overloaded);
    assert_eq!(s2.wait(), Outcome::Overloaded);
    assert!(service.stats().shed >= 2);

    busy.cancel();
    assert_eq!(busy.wait(), Outcome::Cancelled);
    assert_eq!(q1.wait(), Outcome::False);
    assert_eq!(q2.wait(), Outcome::False);
    service.shutdown();
}

#[test]
fn deadlines_leave_plenty_for_easy_queries() {
    // A generous deadline on an easy query must not trip.
    let (snap, _) = qbf_snapshot(4);
    let service = QueryService::new(snap, 2);
    let outcome = service
        .submit(QueryRequest::ask("sat_1").with_deadline(Duration::from_secs(30)))
        .wait();
    assert_eq!(outcome, Outcome::False);
    assert_eq!(service.stats().deadline_exceeded, 0);
    service.shutdown();
}
