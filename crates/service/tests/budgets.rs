//! Budget enforcement against deliberately exponential workloads.
//!
//! The QBF instance is an alternating ∃/∀ XOR chain: refuting it forces
//! the engine to exhaust an exponential assignment tree (about a second
//! of single-threaded work in a debug build at 18 variables), which is
//! exactly the shape of query a service must be able to abandon.

use hdl_core::snapshot::Snapshot;
use hdl_encodings::qbf::build::{n, p};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use hdl_service::{Outcome, QueryRequest, QueryService};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// ∃x₀ ∀x₁ ∃x₂ … with clauses `(xᵢ ∨ xᵢ₊₁) ∧ (¬xᵢ ∨ ¬xᵢ₊₁)` (an XOR
/// chain). False for every `vars ≥ 2`, and refutation visits the whole
/// assignment tree.
fn xor_chain(vars: usize) -> Qbf {
    let prefix = (0..vars)
        .map(|v| {
            let q = if v % 2 == 0 {
                Quant::Exists
            } else {
                Quant::Forall
            };
            (q, vec![v])
        })
        .collect();
    let mut clauses = Vec::new();
    for v in 0..vars - 1 {
        clauses.push(vec![p(v), p(v + 1)]);
        clauses.push(vec![n(v), n(v + 1)]);
    }
    Qbf { prefix, clauses }
}

fn qbf_snapshot(vars: usize) -> (Arc<Snapshot>, bool) {
    let qbf = xor_chain(vars);
    let expected = qbf.eval();
    let enc = encode_qbf(&qbf).unwrap();
    (
        Snapshot::new(enc.symbols, enc.rulebase, enc.database),
        expected,
    )
}

#[test]
fn exponential_qbf_deadline_trips_promptly() {
    let (snap, expected) = qbf_snapshot(18);
    let service = QueryService::new(snap, 2);

    // With a 10ms budget the query must come back quickly — orders of
    // magnitude under the ~1s (debug) unrestricted solve time. The
    // bound below is generous to absorb CI noise while still proving
    // the wall-clock is bounded by the deadline, not the search space.
    let started = Instant::now();
    let outcome = service
        .submit(QueryRequest::ask("sat_1").with_deadline(Duration::from_millis(10)))
        .wait();
    let elapsed = started.elapsed();
    assert_eq!(outcome, Outcome::DeadlineExceeded);
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline trip took {elapsed:?}"
    );
    assert_eq!(service.stats().deadline_exceeded, 1);

    // The cache must not have recorded the abandoned attempt: the same
    // query with no deadline still answers correctly...
    let outcome = service.submit(QueryRequest::ask("sat_1")).wait();
    assert_eq!(outcome, Outcome::from_verdict(Ok(expected)));
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0, "abandoned attempt must not be reused");
    assert_eq!(stats.cache_entries, 1);

    // ...and only the definitive answer is cached for reuse.
    let outcome = service.submit(QueryRequest::ask("sat_1")).wait();
    assert_eq!(outcome, Outcome::from_verdict(Ok(expected)));
    assert_eq!(service.stats().cache_hits, 1);
    service.shutdown();
}

#[test]
fn tickets_cancel_cooperatively() {
    let (snap, _) = qbf_snapshot(18);
    let service = QueryService::new(snap, 1);
    let started = Instant::now();
    let ticket = service.submit(QueryRequest::ask("sat_1"));
    ticket.cancel();
    let outcome = ticket.wait();
    assert_eq!(outcome, Outcome::Cancelled);
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "cancellation took {:?}",
        started.elapsed()
    );

    // The worker survives a cancelled search and keeps serving; the
    // cancelled attempt left nothing behind in the shared cache.
    let stats = service.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.cache_entries, 0);
    let easy = service.submit(QueryRequest::ask("no_such_goal")).wait();
    assert_eq!(easy, Outcome::False, "worker must still answer");
    service.shutdown();
}

#[test]
fn deadlines_leave_plenty_for_easy_queries() {
    // A generous deadline on an easy query must not trip.
    let (snap, _) = qbf_snapshot(4);
    let service = QueryService::new(snap, 2);
    let outcome = service
        .submit(QueryRequest::ask("sat_1").with_deadline(Duration::from_secs(30)))
        .wait();
    assert_eq!(outcome, Outcome::False);
    assert_eq!(service.stats().deadline_exceeded, 0);
    service.shutdown();
}
