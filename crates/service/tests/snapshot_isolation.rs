//! Snapshot isolation: publishing never perturbs in-flight queries, and
//! cache epochs keep answers from leaking across publishes.

use hdl_core::snapshot::Snapshot;
use hdl_encodings::qbf::build::{n, p};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use hdl_service::{Outcome, QueryRequest, QueryService};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn queued_queries_keep_their_submission_snapshot() {
    // Snapshot 1: `p` is not provable. Snapshot 2 adds the missing fact.
    let snap1 = Snapshot::from_program("p :- q.").unwrap();
    let snap2 = Snapshot::from_program("p :- q. q.").unwrap();
    let service = QueryService::new(snap1, 2);

    // Tagged with snapshot 1 at submission; whether each runs before or
    // after the publish below, the outcome is snapshot 1's.
    let before: Vec<_> = (0..8)
        .map(|_| service.submit(QueryRequest::ask("p")))
        .collect();
    service.publish(snap2);
    let after = service.submit(QueryRequest::ask("p"));

    for ticket in before {
        assert_eq!(ticket.wait(), Outcome::False, "snapshot 1 semantics");
    }
    assert_eq!(after.wait(), Outcome::True, "snapshot 2 semantics");
    service.shutdown();
}

#[test]
fn materialized_snapshots_serve_queries_from_the_model() {
    // A session that materialized its model publishes snapshots carrying
    // it; the service then answers plain-atom queries by membership and
    // keeps agreeing with engine evaluation after incremental retraction.
    let mut session = hdl_core::session::Session::new();
    session
        .load(
            "edge(a, b). edge(b, c). edge(a, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
    session.model().unwrap();
    let snap = session.snapshot();
    assert!(snap.model().is_some(), "session model propagated");
    let service = QueryService::new(snap, 2);
    assert_eq!(
        service.submit(QueryRequest::ask("tc(a, c)")).wait(),
        Outcome::True
    );
    assert_eq!(
        service.submit(QueryRequest::ask("~tc(c, a)")).wait(),
        Outcome::True
    );
    match service.submit(QueryRequest::answers("tc(a, X)")).wait() {
        Outcome::Answers(rows) => assert_eq!(rows.len(), 2),
        other => panic!("expected rows, got {other:?}"),
    }
    // Hypothetical queries still evaluate through an engine.
    assert_eq!(
        service
            .submit(QueryRequest::ask("tc(c, b)[add: edge(c, b)]"))
            .wait(),
        Outcome::True
    );
    // Incremental retraction, re-publish: the maintained model rides along.
    let edge = session.symbols_mut().intern("edge");
    let (a, c) = (
        session.symbols_mut().intern("a"),
        session.symbols_mut().intern("c"),
    );
    session
        .retract_fact(&hdl_base::GroundAtom::new(edge, vec![a, c]))
        .unwrap();
    service.publish(session.snapshot());
    assert_eq!(
        service.submit(QueryRequest::ask("tc(a, c)")).wait(),
        Outcome::True,
        "rederived via b after retraction"
    );
    assert_eq!(
        service.submit(QueryRequest::ask("edge(a, c)")).wait(),
        Outcome::False
    );
    service.shutdown();
}

#[test]
fn publish_mid_evaluation_does_not_retarget_the_query() {
    // Snapshot 1 is a ~100ms (debug) refutation; snapshot 2 answers the
    // same query `sat_1` with `true` almost instantly. Publishing while
    // the slow query runs must not change its verdict.
    let slow = {
        let vars = 12;
        let prefix = (0..vars)
            .map(|v| {
                let q = if v % 2 == 0 {
                    Quant::Exists
                } else {
                    Quant::Forall
                };
                (q, vec![v])
            })
            .collect();
        let mut clauses = Vec::new();
        for v in 0..vars - 1 {
            clauses.push(vec![p(v), p(v + 1)]);
            clauses.push(vec![n(v), n(v + 1)]);
        }
        Qbf { prefix, clauses }
    };
    assert!(!slow.eval());
    let fast = Qbf {
        prefix: vec![(Quant::Exists, vec![0])],
        clauses: vec![vec![p(0)]],
    };
    assert!(fast.eval());

    let enc1 = encode_qbf(&slow).unwrap();
    let enc2 = encode_qbf(&fast).unwrap();
    let snap1 = Snapshot::new(enc1.symbols, enc1.rulebase, enc1.database);
    let snap2 = Snapshot::new(enc2.symbols, enc2.rulebase, enc2.database);

    let service = QueryService::new(snap1, 1);
    let inflight = service.submit(QueryRequest::ask("sat_1"));
    // Give the single worker a moment to start evaluating, then swap
    // the program out from under it.
    std::thread::sleep(Duration::from_millis(20));
    service.publish(Arc::clone(&snap2));
    let fresh = service.submit(QueryRequest::ask("sat_1"));

    assert_eq!(inflight.wait(), Outcome::False, "pinned to snapshot 1");
    assert_eq!(fresh.wait(), Outcome::True, "snapshot 2 is live");
    service.shutdown();
}

#[test]
fn cache_epochs_prevent_cross_snapshot_reuse() {
    let snap1 = Snapshot::from_program("p :- q.").unwrap();
    let snap2 = Snapshot::from_program("p :- q. q.").unwrap();
    let service = QueryService::new(snap1, 1);

    assert_eq!(
        service.submit(QueryRequest::ask("p")).wait(),
        Outcome::False
    );
    assert_eq!(
        service.submit(QueryRequest::ask("p")).wait(),
        Outcome::False
    );
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "second identical ask hits");
    assert_eq!(stats.cache_entries, 1);

    service.publish(snap2);
    // Same goal text, new epoch: snapshot 1's `false` must not be
    // served. The publish also reclaimed the stale entry eagerly.
    assert_eq!(service.stats().cache_entries, 0);
    assert_eq!(service.submit(QueryRequest::ask("p")).wait(), Outcome::True);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "no cross-epoch hit");

    assert_eq!(service.submit(QueryRequest::ask("p")).wait(), Outcome::True);
    assert_eq!(service.stats().cache_hits, 2, "within-epoch reuse resumes");
    service.shutdown();
}

#[test]
fn workers_rebuild_engines_per_snapshot() {
    // Interleave queries across three published generations on a pool
    // larger than the queue ever gets; every answer matches the
    // snapshot current at its submission.
    let programs = [
        "gen(one). val :- gen(one).",
        "gen(two). val :- gen(missing).",
        "gen(three). val :- gen(three).",
    ];
    let expected = [Outcome::True, Outcome::False, Outcome::True];
    let service = QueryService::new(Snapshot::from_program(programs[0]).unwrap(), 4);
    let mut tickets = Vec::new();
    for (i, src) in programs.iter().enumerate() {
        if i > 0 {
            service.publish(Snapshot::from_program(src).unwrap());
        }
        for _ in 0..4 {
            tickets.push((i, service.submit(QueryRequest::ask("val"))));
        }
    }
    for (gen, ticket) in tickets {
        assert_eq!(ticket.wait(), expected[gen], "generation {gen}");
    }
    assert_eq!(service.stats().snapshots_published, 2);
    service.shutdown();
}
