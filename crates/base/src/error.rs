//! Shared error type for the workspace's analysis and evaluation layers.

use std::fmt;

/// Errors surfaced by parsers, analyses and engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A textual program failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// The program has recursion through negation (not stratified).
    NotStratified {
        /// Human-readable cycle description.
        cycle: String,
    },
    /// The program is stratified but not *linearly* stratified (Def. 9).
    NotLinearlyStratified {
        /// Which condition failed.
        reason: String,
    },
    /// A query or rule violated a structural requirement.
    Invalid(String),
    /// An engine hit a configured resource limit.
    LimitExceeded {
        /// Which limit (e.g. "goal expansions").
        what: String,
        /// The configured bound.
        limit: u64,
    },
    /// Evaluation was cancelled through a cancellation token.
    Cancelled,
    /// Evaluation ran past its wall-clock deadline.
    DeadlineExceeded,
    /// Evaluation exceeded a configured memory budget (fact count, goal-set
    /// size, overlay depth) and was abandoned to keep the process bounded.
    ResourceExhausted {
        /// Which resource ran out (e.g. "facts", "goal set").
        resource: String,
        /// The configured bound.
        limit: u64,
    },
    /// A filesystem operation failed (durability layer). Carries the
    /// operation context and the rendered `std::io::Error`, since io
    /// errors are neither `Clone` nor `Eq`.
    Io(String),
}

impl Error {
    /// Wraps an `std::io::Error` with the operation that hit it.
    pub fn io(context: impl fmt::Display, err: std::io::Error) -> Self {
        Error::Io(format!("{context}: {err}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            Error::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, previously {expected}"
            ),
            Error::NotStratified { cycle } => {
                write!(
                    f,
                    "program is not stratified: recursion through negation ({cycle})"
                )
            }
            Error::NotLinearlyStratified { reason } => {
                write!(f, "program is not linearly stratified: {reason}")
            }
            Error::Invalid(msg) => write!(f, "invalid program: {msg}"),
            Error::LimitExceeded { what, limit } => {
                write!(f, "evaluation limit exceeded: {what} > {limit}")
            }
            Error::Cancelled => write!(f, "evaluation cancelled"),
            Error::DeadlineExceeded => write!(f, "evaluation deadline exceeded"),
            Error::ResourceExhausted { resource, limit } => {
                write!(f, "resource exhausted: {resource} budget of {limit} spent")
            }
            Error::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse {
            line: 3,
            column: 9,
            message: "expected `.`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:9: expected `.`");
        let e = Error::ArityMismatch {
            predicate: "edge".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("edge"));
        assert!(Error::NotStratified {
            cycle: "a ~> a".into()
        }
        .to_string()
        .contains("negation"));
        assert!(Error::LimitExceeded {
            what: "goals".into(),
            limit: 10
        }
        .to_string()
        .contains("10"));
    }
}
