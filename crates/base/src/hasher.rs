//! A fast, non-cryptographic hasher for small integer-like keys.
//!
//! The engines in this workspace key hash maps almost exclusively by interned
//! `u32` identifiers ([`crate::Symbol`], fact ids) and short tuples of them.
//! The standard library's SipHash is collision-resistant but slow for such
//! keys; this module provides the well-known Fx multiply-xor hash (the
//! algorithm used by the Rust compiler's `FxHasher`), reimplemented locally
//! because the `rustc-hash` crate is not part of this project's dependency
//! budget. HashDoS resistance is irrelevant here: all keys are derived from
//! program-internal interners, never from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash family (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher for interner-derived keys.
///
/// Not cryptographically secure and not HashDoS-resistant; only use for keys
/// that are not attacker-controlled.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time; the tail is folded into a single word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"hello"), hash_of(b"hello"));
        assert_eq!(hash_of(&[]), hash_of(&[]));
    }

    #[test]
    fn distinguishes_simple_inputs() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ba"));
        // Length is folded into the tail word, so prefixes differ.
        assert_ne!(hash_of(b"a"), hash_of(b"a\0"));
    }

    #[test]
    fn integer_writes_distinguish_values() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u32(8);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn no_catastrophic_collisions_on_sequential_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
