//! A minimal inline-capacity vector for `Copy` elements.
//!
//! Overlay database nodes store tiny per-node deltas — typically one or two
//! fact ids added by a hypothetical premise `A[add: C̄]`. Boxing every delta
//! in a `Vec` would put a heap allocation on the hot path of
//! [`crate::factstore::DbStore::extend`]; this type keeps up to `N` elements
//! inline and spills to a `Vec` only for the rare large delta.

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::Deref;

/// A vector storing up to `N` elements inline, spilling to the heap beyond.
///
/// Restricted to `Copy` element types, which keeps the inline buffer free of
/// drop obligations.
pub struct SmallVec<T: Copy, const N: usize>(Repr<T, N>);

enum Repr<T: Copy, const N: usize> {
    /// Up to `N` elements stored in place; `buf[..len]` is initialized.
    Inline { len: u32, buf: [MaybeUninit<T>; N] },
    /// Spilled storage for more than `N` elements.
    Heap(Vec<T>),
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec(Repr::Inline {
            len: 0,
            buf: [MaybeUninit::uninit(); N],
        })
    }

    /// Builds from a slice, staying inline if it fits.
    pub fn from_slice(xs: &[T]) -> Self {
        if xs.len() <= N {
            let mut buf = [MaybeUninit::uninit(); N];
            for (slot, &x) in buf.iter_mut().zip(xs) {
                *slot = MaybeUninit::new(x);
            }
            SmallVec(Repr::Inline {
                len: xs.len() as u32,
                buf,
            })
        } else {
            SmallVec(Repr::Heap(xs.to_vec()))
        }
    }

    /// Appends an element, spilling to the heap when the buffer is full.
    pub fn push(&mut self, x: T) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n < N {
                    buf[n] = MaybeUninit::new(x);
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N + 1);
                    v.extend_from_slice(self.as_slice());
                    v.push(x);
                    self.0 = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(x),
        }
    }

    /// The initialized elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Inline { len, buf } => {
                // SAFETY: `buf[..len]` is initialized by construction
                // (`new`/`from_slice`/`push` maintain the invariant), and
                // `MaybeUninit<T>` has the same layout as `T`.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len as usize) }
            }
            Repr::Heap(v) => v,
        }
    }

    /// The initialized elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                // SAFETY: same invariant as `as_slice`.
                unsafe {
                    std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len as usize)
                }
            }
            Repr::Heap(v) => v,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements live in the inline buffer.
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Iterates over the elements by value.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, T>> {
        self.as_slice().iter().copied()
    }
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_within_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_to_heap_beyond_capacity() {
        let mut v: SmallVec<u32, 2> = SmallVec::from_slice(&[1, 2]);
        assert!(v.is_inline());
        v.push(3);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn from_slice_roundtrips_and_compares() {
        let a: SmallVec<u32, 4> = SmallVec::from_slice(&[5, 6]);
        let b: SmallVec<u32, 4> = [5, 6].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.clone(), a);
        let big: SmallVec<u32, 2> = SmallVec::from_slice(&[1, 2, 3, 4]);
        assert_eq!(big.len(), 4);
        assert_eq!(&big[1..3], &[2, 3], "deref to slice");
    }

    #[test]
    fn sorting_through_mut_slice_works_inline_and_spilled() {
        let mut v: SmallVec<u32, 4> = SmallVec::from_slice(&[3, 1, 2]);
        v.as_mut_slice().sort_unstable();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let mut w: SmallVec<u32, 2> = SmallVec::from_slice(&[9, 4, 7]);
        w.as_mut_slice().sort_unstable();
        assert_eq!(w.as_slice(), &[4, 7, 9]);
    }

    #[test]
    fn empty_default_iterates_nothing() {
        let v: SmallVec<u32, 4> = SmallVec::default();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
    }
}
