//! # hdl-base
//!
//! Base substrate for the hypothetical-Datalog workspace (a reproduction of
//! Bonner, *Hypothetical Datalog: Negation and Linear Recursion*, PODS 1989).
//!
//! This crate provides the vocabulary every other crate builds on:
//!
//! - [`SymbolTable`] / [`Symbol`] — interned constant and predicate names;
//! - [`Term`], [`Var`], [`Atom`], [`GroundAtom`] — the function-free term
//!   language of the paper;
//! - [`Bindings`] — flat substitutions with trail-based undo, and matching
//!   of pattern atoms against ground facts;
//! - [`Database`] — a mutable, predicate-indexed fact store;
//! - [`FactStore`] / [`DbStore`] — interners that give each ground fact and
//!   each database a dense id; databases are stored persistently as a
//!   parent+delta overlay DAG so extension is O(|delta|) while engines
//!   exploring the lattice of hypothetically-augmented databases still
//!   memoize on `(FactId, DbId)`;
//! - [`DbView`] — read-only matching over an interned database without
//!   materializing it;
//! - [`SmallVec`] — inline-capacity storage for the tiny per-node deltas;
//! - [`FxHashMap`] / [`FxHashSet`] — fast hashing for interned keys.

#![warn(missing_docs)]

pub mod atom;
pub mod database;
pub mod error;
pub mod factstore;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod hasher;
pub mod serialize;
pub mod smallvec;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod view;

pub use atom::{Atom, GroundAtom};
pub use database::{Database, MatchCounters};
pub use error::{Error, Result};
pub use factstore::{DbEntry, DbId, DbStore, FactId, FactStore, OverlayStats, FLATTEN_THRESHOLD};
pub use hasher::{FxHashMap, FxHashSet, FxHasher};
pub use serialize::{crc32, Decoder, Encoder};
pub use smallvec::SmallVec;
pub use subst::Bindings;
pub use symbol::{Symbol, SymbolTable};
pub use term::{Term, Var};
pub use view::DbView;

/// Probes a failpoint site from fallible code.
///
/// With the `failpoints` feature enabled this expands to
/// `hdl_base::failpoint::check($site)?`, so an injected fault can panic,
/// delay, or early-return [`Error::ResourceExhausted`] from the enclosing
/// function. Without the feature it expands to nothing.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::failpoint::check($site)?
    };
}

/// Probes a failpoint site from fallible code (no-op build).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {};
}

/// Probes a failpoint site from infallible code: injected panics and
/// delays take effect, injected errors are swallowed. Expands to nothing
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint_fire {
    ($site:expr) => {
        $crate::failpoint::fire($site)
    };
}

/// Probes a failpoint site from infallible code (no-op build).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint_fire {
    ($site:expr) => {};
}

// Concurrency audit: the service layer shares frozen copies of these
// types across worker threads behind `Arc`. They contain no interior
// mutability, so the auto traits must hold — these assertions turn any
// future regression (e.g. an `Rc` or `Cell` sneaking in) into a compile
// error here rather than a distant trait-bound failure in `hdl-service`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SymbolTable>();
    assert_send_sync::<Database>();
    assert_send_sync::<FactStore>();
    assert_send_sync::<DbStore>();
    assert_send_sync::<Error>();
};
