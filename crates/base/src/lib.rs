//! # hdl-base
//!
//! Base substrate for the hypothetical-Datalog workspace (a reproduction of
//! Bonner, *Hypothetical Datalog: Negation and Linear Recursion*, PODS 1989).
//!
//! This crate provides the vocabulary every other crate builds on:
//!
//! - [`SymbolTable`] / [`Symbol`] — interned constant and predicate names;
//! - [`Term`], [`Var`], [`Atom`], [`GroundAtom`] — the function-free term
//!   language of the paper;
//! - [`Bindings`] — flat substitutions with trail-based undo, and matching
//!   of pattern atoms against ground facts;
//! - [`Database`] — a mutable, predicate-indexed fact store;
//! - [`FactStore`] / [`DbStore`] — interners that give each ground fact and
//!   each database a dense id, so that engines exploring the lattice of
//!   hypothetically-augmented databases can memoize on `(FactId, DbId)`;
//! - [`FxHashMap`] / [`FxHashSet`] — fast hashing for interned keys.

#![warn(missing_docs)]

pub mod atom;
pub mod database;
pub mod error;
pub mod factstore;
pub mod hasher;
pub mod subst;
pub mod symbol;
pub mod term;

pub use atom::{Atom, GroundAtom};
pub use database::Database;
pub use error::{Error, Result};
pub use factstore::{DbEntry, DbId, DbStore, FactId, FactStore};
pub use hasher::{FxHashMap, FxHashSet, FxHasher};
pub use subst::Bindings;
pub use symbol::{Symbol, SymbolTable};
pub use term::{Term, Var};
