//! A mutable, predicate-indexed collection of ground facts.
//!
//! [`Database`] is the extensional store handed to the engines and the
//! representation of computed models: facts are grouped per predicate so
//! that matching a rule premise only scans candidates with the right
//! predicate symbol.

use crate::atom::{Atom, GroundAtom};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::subst::Bindings;
use crate::symbol::Symbol;
use crate::term::{Term, Var};

/// Work counters for argument-index probes during premise matching.
///
/// `probes` counts pattern evaluations answered through a
/// `(predicate, argument position, constant)` index lookup instead of a
/// full per-predicate scan; `hits` counts the probes that found at least
/// one candidate. Both the [`Database`] argument index and the flat-root
/// index of [`crate::view::DbView`] report into the same counters.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchCounters {
    /// Indexed lookups performed in place of scans.
    pub probes: u64,
    /// Probes that yielded a non-empty candidate list.
    pub hits: u64,
    /// Candidate facts tested against a pattern (each unification
    /// attempt, successful or not) — the unit of join work.
    pub attempts: u64,
}

impl MatchCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: MatchCounters) {
        self.probes += other.probes;
        self.hits += other.hits;
        self.attempts += other.attempts;
    }
}

/// All facts for one predicate symbol.
#[derive(Default, Clone, Debug)]
struct Relation {
    /// Tuples in insertion order (for deterministic iteration).
    tuples: Vec<Box<[Symbol]>>,
    /// Membership index over the same tuples.
    index: FxHashSet<Box<[Symbol]>>,
    /// Argument-level join index: `(position, constant)` → indices into
    /// `tuples` (in insertion order). Lets a premise with a bound
    /// argument hash-probe its candidates instead of scanning the whole
    /// relation.
    by_arg: FxHashMap<(u32, Symbol), Vec<u32>>,
}

impl Relation {
    fn insert(&mut self, args: Box<[Symbol]>) -> bool {
        if self.index.insert(args.clone()) {
            let row = u32::try_from(self.tuples.len()).expect("relation overflow");
            for (pos, &c) in args.iter().enumerate() {
                self.by_arg.entry((pos as u32, c)).or_default().push(row);
            }
            self.tuples.push(args);
            true
        } else {
            false
        }
    }

    fn contains(&self, args: &[Symbol]) -> bool {
        self.index.contains(args)
    }

    /// Removes `args`, preserving insertion order of the survivors.
    ///
    /// Deletion is rare (interactive retraction only), so this pays one
    /// O(|relation|) compaction + index rebuild rather than complicating
    /// the hot insert/lookup paths with tombstones.
    fn remove(&mut self, args: &[Symbol]) -> bool {
        if !self.index.remove(args) {
            return false;
        }
        self.tuples.retain(|t| &t[..] != args);
        self.by_arg.clear();
        for (row, tuple) in self.tuples.iter().enumerate() {
            for (pos, &c) in tuple.iter().enumerate() {
                self.by_arg
                    .entry((pos as u32, c))
                    .or_default()
                    .push(row as u32);
            }
        }
        true
    }

    /// Removes every tuple in `gone`, compacting and rebuilding the
    /// argument index once — the batch counterpart of
    /// [`Relation::remove`] for deletion cascades (e.g. the overdeletion
    /// phase of incremental maintenance), where per-fact compaction
    /// would cost O(|relation|) per removed tuple.
    fn remove_many(&mut self, gone: &FxHashSet<&[Symbol]>) -> usize {
        let before = self.tuples.len();
        self.index.retain(|t| !gone.contains(&t[..]));
        self.tuples.retain(|t| !gone.contains(&t[..]));
        let removed = before - self.tuples.len();
        if removed > 0 {
            self.by_arg.clear();
            for (row, tuple) in self.tuples.iter().enumerate() {
                for (pos, &c) in tuple.iter().enumerate() {
                    self.by_arg
                        .entry((pos as u32, c))
                        .or_default()
                        .push(row as u32);
                }
            }
        }
        removed
    }

    /// Tuple indices whose argument `pos` equals `c`, in insertion order.
    fn rows_bound(&self, pos: u32, c: Symbol) -> &[u32] {
        self.by_arg.get(&(pos, c)).map_or(&[][..], |v| v.as_slice())
    }
}

/// The first argument position of `pattern` that is bound (a constant or
/// an already-bound variable), with its value — the probe key an
/// argument-level index can serve.
pub(crate) fn bound_position(pattern: &Atom, bindings: &Bindings) -> Option<(u32, Symbol)> {
    pattern.args.iter().enumerate().find_map(|(i, t)| match t {
        Term::Const(c) => Some((i as u32, *c)),
        Term::Var(v) => bindings.get(*v).map(|c| (i as u32, c)),
    })
}

/// A set of ground facts with per-predicate indexing.
///
/// Iteration order is deterministic (per-predicate insertion order), which
/// keeps engine runs and printed models reproducible.
///
/// ```
/// use hdl_base::{Database, GroundAtom, SymbolTable};
/// let mut syms = SymbolTable::new();
/// let edge = syms.intern("edge");
/// let (a, b) = (syms.intern("a"), syms.intern("b"));
/// let mut db = Database::new();
/// db.insert(GroundAtom::new(edge, vec![a, b]));
/// assert!(db.contains(&GroundAtom::new(edge, vec![a, b])));
/// assert_eq!(db.count(edge), 1);
/// ```
#[derive(Default, Clone, Debug)]
pub struct Database {
    rels: FxHashMap<Symbol, Relation>,
    len: usize,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `fact`; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: GroundAtom) -> bool {
        let rel = self.rels.entry(fact.pred).or_default();
        let fresh = rel.insert(fact.args.into_boxed_slice());
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Inserts a fact given as predicate + argument slice.
    pub fn insert_tuple(&mut self, pred: Symbol, args: &[Symbol]) -> bool {
        let rel = self.rels.entry(pred).or_default();
        let fresh = rel.insert(args.into());
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `fact`; returns `true` if it was present.
    ///
    /// Survivors keep their relative insertion order, so iteration stays
    /// deterministic after a retraction.
    pub fn remove(&mut self, fact: &GroundAtom) -> bool {
        let Some(rel) = self.rels.get_mut(&fact.pred) else {
            return false;
        };
        let removed = rel.remove(&fact.args);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Removes every fact in `facts`, returning how many were present.
    ///
    /// Each touched relation is compacted and reindexed once, so a
    /// deletion cascade of `k` facts costs one rebuild per relation
    /// instead of `k` — use this over repeated [`Database::remove`]
    /// whenever the removal set is known up front.
    pub fn remove_all<'a>(&mut self, facts: impl IntoIterator<Item = &'a GroundAtom>) -> usize {
        let mut by_pred: FxHashMap<Symbol, FxHashSet<&[Symbol]>> = FxHashMap::default();
        for f in facts {
            by_pred.entry(f.pred).or_default().insert(&f.args);
        }
        let mut removed = 0;
        for (pred, gone) in &by_pred {
            if let Some(rel) = self.rels.get_mut(pred) {
                removed += rel.remove_many(gone);
            }
        }
        self.len -= removed;
        removed
    }

    /// Whether `fact` is present.
    pub fn contains(&self, fact: &GroundAtom) -> bool {
        self.rels
            .get(&fact.pred)
            .is_some_and(|r| r.contains(&fact.args))
    }

    /// Whether the tuple `args` is present for `pred`.
    pub fn contains_tuple(&self, pred: Symbol, args: &[Symbol]) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(args))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tuples stored for `pred`.
    pub fn count(&self, pred: Symbol) -> usize {
        self.rels.get(&pred).map_or(0, |r| r.tuples.len())
    }

    /// Iterates over the tuples of `pred` in insertion order.
    pub fn tuples(&self, pred: Symbol) -> impl Iterator<Item = &[Symbol]> {
        self.rels
            .get(&pred)
            .into_iter()
            .flat_map(|r| r.tuples.iter().map(|t| &t[..]))
    }

    /// Iterates over all facts as `(pred, tuple)` pairs.
    ///
    /// Predicates are visited in unspecified (but run-deterministic) order;
    /// tuples within a predicate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &[Symbol])> {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.tuples.iter().map(move |t| (p, &t[..])))
    }

    /// Iterates over all facts as owned [`GroundAtom`]s.
    pub fn iter_facts(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.iter()
            .map(|(p, args)| GroundAtom::new(p, args.to_vec()))
    }

    /// The predicates that have at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels
            .iter()
            .filter(|(_, r)| !r.tuples.is_empty())
            .map(|(&p, _)| p)
    }

    /// Inserts every fact of `other` into `self`.
    pub fn absorb(&mut self, other: &Database) {
        for (p, args) in other.iter() {
            self.insert_tuple(p, args);
        }
    }

    /// Collects every constant symbol occurring in any fact.
    pub fn constants(&self) -> FxHashSet<Symbol> {
        let mut out = FxHashSet::default();
        for (_, args) in self.iter() {
            out.extend(args.iter().copied());
        }
        out
    }

    /// Calls `f` with the undo trail for every fact of `pattern.pred` that
    /// matches `pattern` under `bindings`; `f` returning `true` stops the
    /// scan early (existential check). Bindings are restored between
    /// candidates and after the call.
    ///
    /// Returns `true` if `f` stopped the scan.
    pub fn for_each_match(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let mut counters = MatchCounters::default();
        self.for_each_match_counted(pattern, bindings, &mut counters, f)
    }

    /// Like [`Database::for_each_match`], but drives candidate selection
    /// through the argument-level index when the pattern has a bound
    /// argument, recording probe work in `counters`. Candidates are
    /// visited in insertion order either way, so the two entry points
    /// enumerate matches identically.
    pub fn for_each_match_counted(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        counters: &mut MatchCounters,
        mut f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let Some(rel) = self.rels.get(&pattern.pred) else {
            return false;
        };
        // Candidate rows: an index probe when some argument is bound,
        // the whole relation otherwise.
        let rows: Option<&[u32]> = bound_position(pattern, bindings).map(|(pos, c)| {
            counters.probes += 1;
            let rows = rel.rows_bound(pos, c);
            if !rows.is_empty() {
                counters.hits += 1;
            }
            rows
        });
        // Iterate by index: `f` only receives `bindings`, never the tuple
        // storage, so the borrow of `self` stays shared.
        let mut visit =
            |tuple: &[Symbol], counters: &mut MatchCounters, bindings: &mut Bindings| -> bool {
                counters.attempts += 1;
                if tuple.len() != pattern.args.len() {
                    return false;
                }
                let fact = GroundAtom::new(pattern.pred, tuple.to_vec());
                if let Some(trail) = bindings.match_atom(pattern, &fact) {
                    let stop = f(bindings);
                    bindings.undo(&trail);
                    return stop;
                }
                false
            };
        match rows {
            Some(rows) => {
                for &row in rows {
                    if visit(&rel.tuples[row as usize], counters, bindings) {
                        return true;
                    }
                }
                false
            }
            None => {
                for tuple in &rel.tuples {
                    if visit(tuple, counters, bindings) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Collects all extensions of `bindings` under which `pattern` matches a
    /// stored fact, as vectors of `(var, value)` pairs for the variables the
    /// match bound.
    pub fn all_matches(&self, pattern: &Atom, bindings: &mut Bindings) -> Vec<Vec<(Var, Symbol)>> {
        let mut out = Vec::new();
        self.for_each_match(pattern, bindings, |b| {
            let row = pattern
                .vars()
                .filter_map(|v| b.get(v).map(|c| (v, c)))
                .collect();
            out.push(row);
            false
        });
        out
    }
}

impl FromIterator<GroundAtom> for Database {
    fn from_iter<I: IntoIterator<Item = GroundAtom>>(iter: I) -> Self {
        let mut db = Database::new();
        for fact in iter {
            db.insert(fact);
        }
        db
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter().all(|(p, args)| other.contains_tuple(p, args))
    }
}

impl Eq for Database {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(s(p), args.iter().map(|&a| s(a)).collect())
    }

    #[test]
    fn insert_and_contains() {
        let mut db = Database::new();
        assert!(db.insert(fact(0, &[1, 2])));
        assert!(!db.insert(fact(0, &[1, 2])), "duplicate insert");
        assert!(db.contains(&fact(0, &[1, 2])));
        assert!(!db.contains(&fact(0, &[2, 1])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_retracts_and_keeps_order_and_index() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 10]));
        db.insert(fact(0, &[2, 20]));
        db.insert(fact(0, &[1, 30]));
        assert!(db.remove(&fact(0, &[2, 20])));
        assert!(!db.remove(&fact(0, &[2, 20])), "second removal is a no-op");
        assert!(!db.remove(&fact(7, &[1])), "absent predicate");
        assert_eq!(db.len(), 2);
        assert!(!db.contains(&fact(0, &[2, 20])));
        let order: Vec<u32> = db.tuples(s(0)).map(|t| t[1].0).collect();
        assert_eq!(order, vec![10, 30], "survivors keep insertion order");
        // The argument index is rebuilt: a bound-argument match still
        // enumerates exactly the surviving tuples.
        let pattern = Atom::new(s(0), vec![Term::Const(s(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut seen = Vec::new();
        db.for_each_match(&pattern, &mut b, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10, 30]);
    }

    #[test]
    fn remove_all_batches_per_relation() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 10]));
        db.insert(fact(0, &[2, 20]));
        db.insert(fact(0, &[1, 30]));
        db.insert(fact(1, &[5]));
        let gone = [
            fact(0, &[2, 20]),
            fact(0, &[1, 30]),
            fact(1, &[5]),
            fact(9, &[0]),
        ];
        assert_eq!(db.remove_all(&gone), 3, "absent facts are not counted");
        assert_eq!(db.len(), 1);
        assert!(db.contains(&fact(0, &[1, 10])));
        assert!(!db.contains(&fact(1, &[5])));
        // Survivors stay index-reachable through a bound-argument probe.
        let pattern = Atom::new(s(0), vec![Term::Const(s(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut seen = Vec::new();
        db.for_each_match(&pattern, &mut b, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10]);
    }

    #[test]
    fn tuples_iterate_in_insertion_order() {
        let mut db = Database::new();
        db.insert(fact(0, &[3]));
        db.insert(fact(0, &[1]));
        db.insert(fact(0, &[2]));
        let order: Vec<u32> = db.tuples(s(0)).map(|t| t[0].0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Database::new();
        a.insert(fact(0, &[1]));
        a.insert(fact(1, &[2, 3]));
        let mut b = Database::new();
        b.insert(fact(1, &[2, 3]));
        b.insert(fact(0, &[1]));
        assert_eq!(a, b);
        b.insert(fact(0, &[9]));
        assert_ne!(a, b);
    }

    #[test]
    fn constants_collects_all_symbols() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 2]));
        db.insert(fact(5, &[2, 7]));
        let cs = db.constants();
        assert_eq!(cs.len(), 3);
        for c in [1, 2, 7] {
            assert!(cs.contains(&s(c)));
        }
    }

    #[test]
    fn for_each_match_enumerates_and_restores() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 10]));
        db.insert(fact(0, &[2, 20]));
        db.insert(fact(0, &[1, 30]));
        let pattern = Atom::new(s(0), vec![Term::Const(s(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut seen = Vec::new();
        db.for_each_match(&pattern, &mut b, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10, 30]);
        assert_eq!(b.get(Var(0)), None, "bindings restored after scan");
    }

    #[test]
    fn for_each_match_early_stop() {
        let mut db = Database::new();
        for i in 0..10 {
            db.insert(fact(0, &[i]));
        }
        let pattern = Atom::new(s(0), vec![Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut count = 0;
        let stopped = db.for_each_match(&pattern, &mut b, |_| {
            count += 1;
            count == 3
        });
        assert!(stopped);
        assert_eq!(count, 3);
    }

    #[test]
    fn indexed_match_agrees_with_scan_and_counts_probes() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 10]));
        db.insert(fact(0, &[2, 20]));
        db.insert(fact(0, &[1, 30]));
        // Bound first argument: served by the argument index.
        let pattern = Atom::new(s(0), vec![Term::Const(s(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(2);
        let mut counters = MatchCounters::default();
        let mut seen = Vec::new();
        db.for_each_match_counted(&pattern, &mut b, &mut counters, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10, 30], "insertion order preserved");
        assert_eq!(
            counters,
            MatchCounters {
                probes: 1,
                hits: 1,
                attempts: 2
            }
        );
        // Bound second argument via an already-bound variable.
        let pattern = Atom::new(s(0), vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        b.set(Var(1), s(20));
        let mut counters = MatchCounters::default();
        let mut seen = Vec::new();
        db.for_each_match_counted(&pattern, &mut b, &mut counters, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![2]);
        assert_eq!(counters.probes, 1);
        b.unset(Var(1));
        // No bound argument: full scan, no probes counted.
        let mut counters = MatchCounters::default();
        let mut n = 0;
        db.for_each_match_counted(&pattern, &mut b, &mut counters, |_| {
            n += 1;
            false
        });
        assert_eq!(n, 3);
        assert_eq!((counters.probes, counters.hits), (0, 0));
        assert_eq!(counters.attempts, 3, "scan tested every tuple");
        // Probe that misses: counted as a probe but not a hit, and no
        // candidates were ever tested.
        let pattern = Atom::new(s(0), vec![Term::Const(s(9)), Term::Var(Var(0))]);
        let mut counters = MatchCounters::default();
        assert!(!db.for_each_match_counted(&pattern, &mut b, &mut counters, |_| true));
        assert_eq!(
            counters,
            MatchCounters {
                probes: 1,
                hits: 0,
                attempts: 0
            }
        );
    }

    #[test]
    fn arity_mismatch_does_not_match() {
        let mut db = Database::new();
        db.insert(fact(0, &[1]));
        db.insert(fact(0, &[1, 2]));
        let pattern = Atom::new(s(0), vec![Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut n = 0;
        db.for_each_match(&pattern, &mut b, |_| {
            n += 1;
            false
        });
        assert_eq!(n, 1, "only the unary tuple matches a unary pattern");
    }

    #[test]
    fn absorb_merges() {
        let mut a = Database::new();
        a.insert(fact(0, &[1]));
        let mut b = Database::new();
        b.insert(fact(0, &[1]));
        b.insert(fact(1, &[2]));
        a.absorb(&b);
        assert_eq!(a.len(), 2);
    }
}
