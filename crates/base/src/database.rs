//! A mutable, predicate-indexed collection of ground facts.
//!
//! [`Database`] is the extensional store handed to the engines and the
//! representation of computed models: facts are grouped per predicate so
//! that matching a rule premise only scans candidates with the right
//! predicate symbol.

use crate::atom::{Atom, GroundAtom};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::subst::Bindings;
use crate::symbol::Symbol;
use crate::term::Var;

/// All facts for one predicate symbol.
#[derive(Default, Clone, Debug)]
struct Relation {
    /// Tuples in insertion order (for deterministic iteration).
    tuples: Vec<Box<[Symbol]>>,
    /// Membership index over the same tuples.
    index: FxHashSet<Box<[Symbol]>>,
}

impl Relation {
    fn insert(&mut self, args: Box<[Symbol]>) -> bool {
        if self.index.insert(args.clone()) {
            self.tuples.push(args);
            true
        } else {
            false
        }
    }

    fn contains(&self, args: &[Symbol]) -> bool {
        self.index.contains(args)
    }
}

/// A set of ground facts with per-predicate indexing.
///
/// Iteration order is deterministic (per-predicate insertion order), which
/// keeps engine runs and printed models reproducible.
///
/// ```
/// use hdl_base::{Database, GroundAtom, SymbolTable};
/// let mut syms = SymbolTable::new();
/// let edge = syms.intern("edge");
/// let (a, b) = (syms.intern("a"), syms.intern("b"));
/// let mut db = Database::new();
/// db.insert(GroundAtom::new(edge, vec![a, b]));
/// assert!(db.contains(&GroundAtom::new(edge, vec![a, b])));
/// assert_eq!(db.count(edge), 1);
/// ```
#[derive(Default, Clone, Debug)]
pub struct Database {
    rels: FxHashMap<Symbol, Relation>,
    len: usize,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `fact`; returns `true` if it was not already present.
    pub fn insert(&mut self, fact: GroundAtom) -> bool {
        let rel = self.rels.entry(fact.pred).or_default();
        let fresh = rel.insert(fact.args.into_boxed_slice());
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Inserts a fact given as predicate + argument slice.
    pub fn insert_tuple(&mut self, pred: Symbol, args: &[Symbol]) -> bool {
        let rel = self.rels.entry(pred).or_default();
        let fresh = rel.insert(args.into());
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Whether `fact` is present.
    pub fn contains(&self, fact: &GroundAtom) -> bool {
        self.rels
            .get(&fact.pred)
            .is_some_and(|r| r.contains(&fact.args))
    }

    /// Whether the tuple `args` is present for `pred`.
    pub fn contains_tuple(&self, pred: Symbol, args: &[Symbol]) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(args))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tuples stored for `pred`.
    pub fn count(&self, pred: Symbol) -> usize {
        self.rels.get(&pred).map_or(0, |r| r.tuples.len())
    }

    /// Iterates over the tuples of `pred` in insertion order.
    pub fn tuples(&self, pred: Symbol) -> impl Iterator<Item = &[Symbol]> {
        self.rels
            .get(&pred)
            .into_iter()
            .flat_map(|r| r.tuples.iter().map(|t| &t[..]))
    }

    /// Iterates over all facts as `(pred, tuple)` pairs.
    ///
    /// Predicates are visited in unspecified (but run-deterministic) order;
    /// tuples within a predicate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &[Symbol])> {
        self.rels
            .iter()
            .flat_map(|(&p, r)| r.tuples.iter().map(move |t| (p, &t[..])))
    }

    /// Iterates over all facts as owned [`GroundAtom`]s.
    pub fn iter_facts(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.iter()
            .map(|(p, args)| GroundAtom::new(p, args.to_vec()))
    }

    /// The predicates that have at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels
            .iter()
            .filter(|(_, r)| !r.tuples.is_empty())
            .map(|(&p, _)| p)
    }

    /// Inserts every fact of `other` into `self`.
    pub fn absorb(&mut self, other: &Database) {
        for (p, args) in other.iter() {
            self.insert_tuple(p, args);
        }
    }

    /// Collects every constant symbol occurring in any fact.
    pub fn constants(&self) -> FxHashSet<Symbol> {
        let mut out = FxHashSet::default();
        for (_, args) in self.iter() {
            out.extend(args.iter().copied());
        }
        out
    }

    /// Calls `f` with the undo trail for every fact of `pattern.pred` that
    /// matches `pattern` under `bindings`; `f` returning `true` stops the
    /// scan early (existential check). Bindings are restored between
    /// candidates and after the call.
    ///
    /// Returns `true` if `f` stopped the scan.
    pub fn for_each_match(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        mut f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let Some(rel) = self.rels.get(&pattern.pred) else {
            return false;
        };
        // Iterate by index: `f` only receives `bindings`, never the tuple
        // storage, so the borrow of `self` stays shared.
        for tuple in &rel.tuples {
            if tuple.len() != pattern.args.len() {
                continue;
            }
            let fact = GroundAtom::new(pattern.pred, tuple.to_vec());
            if let Some(trail) = bindings.match_atom(pattern, &fact) {
                let stop = f(bindings);
                bindings.undo(&trail);
                if stop {
                    return true;
                }
            }
        }
        false
    }

    /// Collects all extensions of `bindings` under which `pattern` matches a
    /// stored fact, as vectors of `(var, value)` pairs for the variables the
    /// match bound.
    pub fn all_matches(&self, pattern: &Atom, bindings: &mut Bindings) -> Vec<Vec<(Var, Symbol)>> {
        let mut out = Vec::new();
        self.for_each_match(pattern, bindings, |b| {
            let row = pattern
                .vars()
                .filter_map(|v| b.get(v).map(|c| (v, c)))
                .collect();
            out.push(row);
            false
        });
        out
    }
}

impl FromIterator<GroundAtom> for Database {
    fn from_iter<I: IntoIterator<Item = GroundAtom>>(iter: I) -> Self {
        let mut db = Database::new();
        for fact in iter {
            db.insert(fact);
        }
        db
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter().all(|(p, args)| other.contains_tuple(p, args))
    }
}

impl Eq for Database {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(s(p), args.iter().map(|&a| s(a)).collect())
    }

    #[test]
    fn insert_and_contains() {
        let mut db = Database::new();
        assert!(db.insert(fact(0, &[1, 2])));
        assert!(!db.insert(fact(0, &[1, 2])), "duplicate insert");
        assert!(db.contains(&fact(0, &[1, 2])));
        assert!(!db.contains(&fact(0, &[2, 1])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn tuples_iterate_in_insertion_order() {
        let mut db = Database::new();
        db.insert(fact(0, &[3]));
        db.insert(fact(0, &[1]));
        db.insert(fact(0, &[2]));
        let order: Vec<u32> = db.tuples(s(0)).map(|t| t[0].0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Database::new();
        a.insert(fact(0, &[1]));
        a.insert(fact(1, &[2, 3]));
        let mut b = Database::new();
        b.insert(fact(1, &[2, 3]));
        b.insert(fact(0, &[1]));
        assert_eq!(a, b);
        b.insert(fact(0, &[9]));
        assert_ne!(a, b);
    }

    #[test]
    fn constants_collects_all_symbols() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 2]));
        db.insert(fact(5, &[2, 7]));
        let cs = db.constants();
        assert_eq!(cs.len(), 3);
        for c in [1, 2, 7] {
            assert!(cs.contains(&s(c)));
        }
    }

    #[test]
    fn for_each_match_enumerates_and_restores() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 10]));
        db.insert(fact(0, &[2, 20]));
        db.insert(fact(0, &[1, 30]));
        let pattern = Atom::new(s(0), vec![Term::Const(s(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut seen = Vec::new();
        db.for_each_match(&pattern, &mut b, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10, 30]);
        assert_eq!(b.get(Var(0)), None, "bindings restored after scan");
    }

    #[test]
    fn for_each_match_early_stop() {
        let mut db = Database::new();
        for i in 0..10 {
            db.insert(fact(0, &[i]));
        }
        let pattern = Atom::new(s(0), vec![Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut count = 0;
        let stopped = db.for_each_match(&pattern, &mut b, |_| {
            count += 1;
            count == 3
        });
        assert!(stopped);
        assert_eq!(count, 3);
    }

    #[test]
    fn arity_mismatch_does_not_match() {
        let mut db = Database::new();
        db.insert(fact(0, &[1]));
        db.insert(fact(0, &[1, 2]));
        let pattern = Atom::new(s(0), vec![Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut n = 0;
        db.for_each_match(&pattern, &mut b, |_| {
            n += 1;
            false
        });
        assert_eq!(n, 1, "only the unary tuple matches a unary pattern");
    }

    #[test]
    fn absorb_merges() {
        let mut a = Database::new();
        a.insert(fact(0, &[1]));
        let mut b = Database::new();
        b.insert(fact(0, &[1]));
        b.insert(fact(1, &[2]));
        a.absorb(&b);
        assert_eq!(a.len(), 2);
    }
}
