//! Deterministic fault injection ("failpoints") for robustness testing.
//!
//! A *failpoint* is a named site in production code at which a test can
//! inject a fault: a panic, a delay, or a spurious
//! [`Error::ResourceExhausted`]. Sites are compiled in only when the
//! `failpoints` cargo feature is enabled; without it the
//! [`failpoint!`](crate::failpoint!) / [`failpoint_fire!`](crate::failpoint_fire!)
//! macros expand to nothing, so release builds carry zero cost.
//!
//! Injection is *deterministic*: every configured site owns a private
//! xorshift64 stream seeded from `(seed, site name)`, so a given
//! `(seed, one_in)` configuration fires on the same sequence of hits on
//! every run. Tests can additionally cap the number of fires with
//! [`FaultSpec::max_fires`] for exact scenarios ("panic exactly once,
//! then recover").
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use hdl_base::failpoint::{self, FaultAction, FaultSpec};
//!
//! failpoint::configure("demo::site", FaultSpec::erroring(1).fires(1), 42);
//! assert!(failpoint::check("demo::site").is_err()); // fires once...
//! assert!(failpoint::check("demo::site").is_ok()); // ...then is spent
//! failpoint::clear();
//! # }
//! ```

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What a firing failpoint does to the thread that hit it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a `failpoint '<site>'` payload (exercises
    /// `catch_unwind` isolation and lock-poisoning recovery).
    Panic,
    /// Sleep for the given duration (exercises deadline/queueing paths).
    Delay(Duration),
    /// Return a spurious [`Error::ResourceExhausted`] (exercises
    /// structured degradation); ignored at sites that cannot return
    /// errors.
    Error,
}

/// Configuration of one failpoint site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault to inject when the site fires.
    pub action: FaultAction,
    /// Fire on roughly one in `one_in` hits (deterministically, from the
    /// site's seeded stream); `1` or `0` fires on every hit.
    pub one_in: u32,
    /// Stop firing after this many fires (`None` = unbounded).
    pub max_fires: Option<u64>,
}

impl FaultSpec {
    /// A panicking spec firing one-in-`one_in` hits.
    pub fn panicking(one_in: u32) -> Self {
        FaultSpec {
            action: FaultAction::Panic,
            one_in,
            max_fires: None,
        }
    }

    /// A delaying spec firing one-in-`one_in` hits.
    pub fn delaying(ms: u64, one_in: u32) -> Self {
        FaultSpec {
            action: FaultAction::Delay(Duration::from_millis(ms)),
            one_in,
            max_fires: None,
        }
    }

    /// A spurious-resource-error spec firing one-in-`one_in` hits.
    pub fn erroring(one_in: u32) -> Self {
        FaultSpec {
            action: FaultAction::Error,
            one_in,
            max_fires: None,
        }
    }

    /// Caps the total number of fires.
    pub fn fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }
}

struct Site {
    name: String,
    spec: FaultSpec,
    rng: u64,
    hits: u64,
    fired: u64,
}

/// Fast-path gate: `check` is a single relaxed load while no site is
/// configured, so even feature-enabled builds only pay for injection
/// where a test asked for it.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<Site>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<Site>> {
    // The registry must stay usable after an injected panic fired while
    // a test thread held the lock — recover instead of cascading.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64-style mix for seeding per-site streams.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_seed(seed: u64, name: &str) -> u64 {
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    mix(seed ^ h) | 1 // xorshift state must be non-zero
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Arms `site` with `spec`, seeding its deterministic stream from
/// `seed`. Reconfiguring an armed site resets its counters and stream.
pub fn configure(site: &str, spec: FaultSpec, seed: u64) {
    let mut reg = registry();
    let fresh = Site {
        name: site.to_owned(),
        spec,
        rng: site_seed(seed, site),
        hits: 0,
        fired: 0,
    };
    match reg.iter_mut().find(|s| s.name == site) {
        Some(s) => *s = fresh,
        None => reg.push(fresh),
    }
    ACTIVE.store(true, Ordering::Release);
}

/// Disarms every site (counters are discarded).
pub fn clear() {
    let mut reg = registry();
    reg.clear();
    ACTIVE.store(false, Ordering::Release);
}

/// `(hits, fires)` recorded for `site` since it was configured.
pub fn counters(site: &str) -> (u64, u64) {
    registry()
        .iter()
        .find(|s| s.name == site)
        .map_or((0, 0), |s| (s.hits, s.fired))
}

/// Probes `site`: panics, sleeps, or errors if the site is armed and its
/// stream elects this hit. Called via the [`failpoint!`](crate::failpoint!)
/// macro in code that can propagate [`Error`]s.
pub fn check(site: &str) -> Result<()> {
    if !ACTIVE.load(Ordering::Acquire) {
        return Ok(());
    }
    let action = {
        let mut reg = registry();
        let Some(s) = reg.iter_mut().find(|s| s.name == site) else {
            return Ok(());
        };
        s.hits += 1;
        if s.spec.max_fires.is_some_and(|cap| s.fired >= cap) {
            return Ok(());
        }
        let elected =
            s.spec.one_in <= 1 || xorshift(&mut s.rng).is_multiple_of(s.spec.one_in as u64);
        if !elected {
            return Ok(());
        }
        s.fired += 1;
        s.spec.action
        // Lock dropped here: the panic/sleep below must not poison or
        // hold the registry.
    };
    match action {
        FaultAction::Panic => panic!("failpoint '{site}'"),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Error => Err(Error::ResourceExhausted {
            resource: format!("failpoint '{site}'"),
            limit: 0,
        }),
    }
}

/// Like [`check`] for sites that cannot return an error: panics and
/// delays take effect, a configured [`FaultAction::Error`] is ignored.
pub fn fire(site: &str) {
    let _ = check(site);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; serialize the tests touching it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn deterministic_and_capped() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        configure("t::err", FaultSpec::erroring(3), 7);
        let pattern: Vec<bool> = (0..32).map(|_| check("t::err").is_err()).collect();
        assert!(pattern.iter().any(|&b| b), "one-in-3 must fire within 32");
        configure("t::err", FaultSpec::erroring(3), 7);
        let replay: Vec<bool> = (0..32).map(|_| check("t::err").is_err()).collect();
        assert_eq!(pattern, replay, "same seed must replay the same fires");

        configure("t::once", FaultSpec::erroring(1).fires(1), 7);
        assert!(check("t::once").is_err());
        assert!(check("t::once").is_ok());
        assert_eq!(counters("t::once"), (2, 1));
        clear();
    }

    #[test]
    fn unarmed_sites_are_inert() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(check("t::nowhere").is_ok());
        assert_eq!(counters("t::nowhere"), (0, 0));
    }
}
