//! Terms: variables and constants (the language is function-free).

use crate::symbol::Symbol;
use std::fmt;

/// A variable identifier, scoped to a single rule.
///
/// Variables are numbered densely from 0 within each rule, so substitutions
/// can be flat `Vec<Option<Symbol>>` buffers indexed by `Var`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of this variable within its rule.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

/// A function-free term: either a rule-scoped variable or an interned
/// constant symbol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable, universally quantified at rule scope.
    Var(Var),
    /// A constant from the data domain.
    Const(Symbol),
}

impl Term {
    /// Returns the variable if this term is one.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    #[inline]
    pub fn as_const(self) -> Option<Symbol> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Whether this term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Symbol> for Term {
    fn from(s: Symbol) -> Self {
        Term::Const(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Term::Var(Var(3));
        let c = Term::Const(Symbol(7));
        assert_eq!(v.as_var(), Some(Var(3)));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(Symbol(7)));
        assert_eq!(c.as_var(), None);
        assert!(v.is_var());
        assert!(!c.is_var());
    }

    #[test]
    fn conversions() {
        assert_eq!(Term::from(Var(1)), Term::Var(Var(1)));
        assert_eq!(Term::from(Symbol(2)), Term::Const(Symbol(2)));
    }
}
