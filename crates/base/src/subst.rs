//! Substitutions and pattern matching against ground facts.
//!
//! Rules are range-grounded by the engines (Definition 3 quantifies over
//! ground substitutions), so the only unification needed is *matching*: a
//! pattern atom with variables against a ground fact. Bindings are flat
//! buffers indexed by rule-scoped [`Var`] ids, reused across match attempts
//! via an undo trail to avoid per-candidate allocation.

use crate::atom::{Atom, GroundAtom};
use crate::symbol::Symbol;
use crate::term::{Term, Var};

/// A partial assignment of rule variables to constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Symbol>>,
}

impl Bindings {
    /// Creates an all-unbound assignment for a rule with `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        Bindings {
            slots: vec![None; nvars],
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current value of `v`, if bound.
    #[inline]
    pub fn get(&self, v: Var) -> Option<Symbol> {
        self.slots[v.index()]
    }

    /// Binds `v` to `c`, overwriting any previous value.
    #[inline]
    pub fn set(&mut self, v: Var, c: Symbol) {
        self.slots[v.index()] = c.into();
    }

    /// Unbinds `v`.
    #[inline]
    pub fn unset(&mut self, v: Var) {
        self.slots[v.index()] = None;
    }

    /// Whether every slot is bound.
    pub fn is_total(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Attempts to match `pattern` against ground `fact`, extending `self`.
    ///
    /// On success returns a trail of the variables newly bound by this call
    /// (for undo); on failure `self` is restored and `None` is returned.
    pub fn match_atom(&mut self, pattern: &Atom, fact: &GroundAtom) -> Option<Vec<Var>> {
        if pattern.pred != fact.pred || pattern.args.len() != fact.args.len() {
            return None;
        }
        let mut trail = Vec::new();
        for (&t, &c) in pattern.args.iter().zip(&fact.args) {
            match t {
                Term::Const(k) => {
                    if k != c {
                        self.undo(&trail);
                        return None;
                    }
                }
                Term::Var(v) => match self.get(v) {
                    Some(bound) => {
                        if bound != c {
                            self.undo(&trail);
                            return None;
                        }
                    }
                    None => {
                        self.set(v, c);
                        trail.push(v);
                    }
                },
            }
        }
        Some(trail)
    }

    /// Unbinds every variable in `trail` (reverses a [`match_atom`] success).
    ///
    /// [`match_atom`]: Bindings::match_atom
    pub fn undo(&mut self, trail: &[Var]) {
        for &v in trail {
            self.unset(v);
        }
    }

    /// A copy of the current slot assignment (for proof recording).
    pub fn snapshot(&self) -> Vec<Option<Symbol>> {
        self.slots.clone()
    }

    /// The unbound variables of `atom` under the current assignment,
    /// deduplicated in first-occurrence order.
    pub fn free_vars_of(&self, atom: &Atom) -> Vec<Var> {
        let mut out = Vec::new();
        for v in atom.vars() {
            if self.get(v).is_none() && !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn match_binds_and_trails() {
        let pat = Atom::new(sym(0), vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let fact = GroundAtom::new(sym(0), vec![sym(5), sym(6)]);
        let mut b = Bindings::new(2);
        let trail = b.match_atom(&pat, &fact).expect("should match");
        assert_eq!(trail, vec![Var(0), Var(1)]);
        assert_eq!(b.get(Var(0)), Some(sym(5)));
        assert_eq!(b.get(Var(1)), Some(sym(6)));
        b.undo(&trail);
        assert_eq!(b.get(Var(0)), None);
    }

    #[test]
    fn match_respects_existing_bindings() {
        let pat = Atom::new(sym(0), vec![Term::Var(Var(0)), Term::Var(Var(0))]);
        let eq = GroundAtom::new(sym(0), vec![sym(3), sym(3)]);
        let ne = GroundAtom::new(sym(0), vec![sym(3), sym(4)]);
        let mut b = Bindings::new(1);
        assert!(b.match_atom(&pat, &eq).is_some());
        b.unset(Var(0));
        // A failed match must restore the pre-call state.
        assert!(b.match_atom(&pat, &ne).is_none());
        assert_eq!(b.get(Var(0)), None);
    }

    #[test]
    fn match_rejects_wrong_predicate_or_arity() {
        let pat = Atom::new(sym(0), vec![Term::Var(Var(0))]);
        let wrong_pred = GroundAtom::new(sym(1), vec![sym(2)]);
        let wrong_arity = GroundAtom::new(sym(0), vec![sym(2), sym(3)]);
        let mut b = Bindings::new(1);
        assert!(b.match_atom(&pat, &wrong_pred).is_none());
        assert!(b.match_atom(&pat, &wrong_arity).is_none());
    }

    #[test]
    fn match_constant_mismatch_restores() {
        let pat = Atom::new(sym(0), vec![Term::Var(Var(0)), Term::Const(sym(9))]);
        let fact = GroundAtom::new(sym(0), vec![sym(1), sym(8)]);
        let mut b = Bindings::new(1);
        assert!(b.match_atom(&pat, &fact).is_none());
        assert_eq!(b.get(Var(0)), None, "partial binding must be rolled back");
    }

    #[test]
    fn free_vars_dedup_in_order() {
        let a = Atom::new(
            sym(0),
            vec![
                Term::Var(Var(2)),
                Term::Var(Var(0)),
                Term::Var(Var(2)),
                Term::Const(sym(1)),
            ],
        );
        let mut b = Bindings::new(3);
        assert_eq!(b.free_vars_of(&a), vec![Var(2), Var(0)]);
        b.set(Var(2), sym(4));
        assert_eq!(b.free_vars_of(&a), vec![Var(0)]);
    }
}
