//! Interners for ground facts and for whole databases.
//!
//! Hypothetical inference explores a *lattice of databases*: every premise
//! `A[add: C̄]` moves the proof to a strictly larger database. The engines
//! therefore intern each ground fact to a dense [`FactId`] and each database
//! to a dense [`DbId`], so that memo tables can be keyed by plain
//! `(FactId, DbId)` pairs instead of hashing whole fact sets at every lookup.
//!
//! Databases are stored **persistently** as a parent+delta DAG rather than
//! as materialized fact vectors. Each [`DbEntry`] records its parent node,
//! the small delta of facts added over the parent, and a cumulative
//! *overlay* — the sorted facts it holds above its nearest *flat* ancestor
//! (`croot`). Flat nodes materialize their full fact set plus a
//! per-predicate index that every descendant shares. When an overlay would
//! exceed [`FLATTEN_THRESHOLD`], the new node is created flat instead, so
//! reads never chase more than a bounded overlay while writes stay
//! O(|delta|) rather than O(|DB|).
//!
//! Deltas are signed: a premise `A[del: C̄]` moves the proof to a strictly
//! *smaller* database. Chain nodes therefore carry a *negative overlay*
//! alongside the positive one — the sorted facts of the flat root that the
//! node masks out — and the represented set is
//! `(flat(croot) ∖ neg_overlay) ∪ overlay`. [`DbStore::shrink`] is the
//! removal dual of [`DbStore::extend`] and shares its O(|delta|) cost;
//! [`DbStore::apply`] composes both (removals first, so `add:` wins when a
//! fact appears in both lists).
//!
//! Interning is canonical over *fact sets*, not construction paths: two
//! databases reached by different extension orders (or from different
//! roots) compare equal and share one [`DbId`]. Equality is resolved
//! through an order-independent set hash with full verification on bucket
//! collisions, preserving the engines' O(1) database equality. Because the
//! set hash is an XOR fold and XOR is self-inverse, removal re-hashing is
//! as incremental as addition.

use crate::atom::GroundAtom;
use crate::database::Database;
use crate::hasher::FxHashMap;
use crate::smallvec::SmallVec;
use crate::symbol::Symbol;
use std::sync::Arc;

/// Dense id of an interned ground fact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// Dense index of this fact.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table for ground facts.
#[derive(Default, Clone)]
pub struct FactStore {
    facts: Vec<GroundAtom>,
    ids: FxHashMap<GroundAtom, FactId>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `fact`, returning its id.
    pub fn intern(&mut self, fact: GroundAtom) -> FactId {
        if let Some(&id) = self.ids.get(&fact) {
            return id;
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact store overflow"));
        self.facts.push(fact.clone());
        self.ids.insert(fact, id);
        id
    }

    /// Looks up an already-interned fact.
    pub fn lookup(&self, fact: &GroundAtom) -> Option<FactId> {
        self.ids.get(fact).copied()
    }

    /// The fact with id `id`.
    pub fn fact(&self, id: FactId) -> &GroundAtom {
        &self.facts[id.index()]
    }

    /// Number of interned facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts have been interned.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// Dense id of an interned database (a set of facts).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DbId(pub u32);

impl DbId {
    /// Dense index of this database.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Overlay length at which a new node is materialized flat.
///
/// Reads over a chain node scan its overlay linearly (binary search for
/// membership), so the overlay is kept short; once a lineage has
/// accumulated this many facts above its flat root, the next extension
/// pays one O(|DB|) materialization and becomes the new `croot` its own
/// descendants index against.
pub const FLATTEN_THRESHOLD: usize = 32;

/// Materialized representation held by flat nodes only.
#[derive(Debug)]
struct FlatRepr {
    /// Sorted, deduplicated fact ids of the full set.
    facts: Arc<Vec<FactId>>,
    /// Fact ids grouped by predicate, shared by all chain descendants.
    by_pred: Arc<FxHashMap<Symbol, Vec<FactId>>>,
    /// Argument-level join index: `(predicate, argument position,
    /// constant)` → fact ids, shared by all chain descendants. Premises
    /// with a bound argument probe this instead of scanning `by_pred`;
    /// a descendant's (bounded) overlay is filtered linearly on top.
    by_arg: Arc<FxHashMap<(Symbol, u32, Symbol), Vec<FactId>>>,
}

/// A node in the persistent overlay DAG of databases.
///
/// Flat nodes (`croot == self`) materialize their fact set; chain nodes
/// record only their signed delta over the parent plus the cumulative
/// (positive and negative) overlays against the shared flat root. Both
/// answer reads through [`crate::view::DbView`].
#[derive(Debug)]
pub struct DbEntry {
    /// The node this one was extended from (`self` for roots).
    parent: DbId,
    /// Nearest flat ancestor (`self` for flat nodes).
    croot: DbId,
    /// Facts added over `parent` (sorted; empty for roots).
    delta: SmallVec<FactId, 4>,
    /// Facts removed over `parent` (sorted; empty for roots).
    neg_delta: SmallVec<FactId, 4>,
    /// Facts held above `croot`, sorted, disjoint from `croot`'s set
    /// (empty for flat nodes).
    overlay: Arc<Vec<FactId>>,
    /// Facts of `croot`'s set masked out of this node, sorted (empty for
    /// flat nodes). The represented set is
    /// `(flat(croot) ∖ neg_overlay) ∪ overlay`.
    neg_overlay: Arc<Vec<FactId>>,
    /// Total fact count of the represented set.
    len: u32,
    /// Order-independent hash of the represented set.
    set_hash: u64,
    /// Extension distance from an interned root (roots are 0).
    depth: u32,
    /// Whether this node only exists as a derived artifact of evaluation
    /// (an engine's hypothetical extension), as opposed to session state.
    /// Derived nodes are skipped by [`DbStore::encode_dag`] and recomputed
    /// on demand after a restore.
    derived: bool,
    /// Materialized set + predicate index; `Some` exactly on flat nodes.
    flat: Option<FlatRepr>,
}

impl DbEntry {
    /// The node this database was extended from (`self` for roots).
    #[inline]
    pub fn parent(&self) -> DbId {
        self.parent
    }

    /// The nearest flat ancestor whose index this node shares.
    #[inline]
    pub fn croot(&self) -> DbId {
        self.croot
    }

    /// The facts this node added over its parent.
    #[inline]
    pub fn delta(&self) -> &[FactId] {
        &self.delta
    }

    /// The facts this node removed from its parent.
    #[inline]
    pub fn neg_delta(&self) -> &[FactId] {
        &self.neg_delta
    }

    /// The sorted facts this node holds above its flat root.
    #[inline]
    pub fn overlay(&self) -> &[FactId] {
        &self.overlay
    }

    /// The sorted facts of the flat root this node masks out.
    #[inline]
    pub fn neg_overlay(&self) -> &[FactId] {
        &self.neg_overlay
    }

    /// Whether this node masks out any facts of its flat root.
    #[inline]
    pub fn has_neg_overlay(&self) -> bool {
        !self.neg_overlay.is_empty()
    }

    /// Whether this node materializes its full fact set.
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.flat.is_some()
    }

    /// Number of facts in the represented set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the represented set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extension distance from an interned root database (roots are 0).
    ///
    /// Canonicalization keeps this a property of the *first* construction
    /// path that reached the set; it is used as a proxy for hypothetical
    /// nesting depth by the memory budget, not as a semantic attribute.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether this node is an evaluation artifact skipped by
    /// [`DbStore::encode_dag`].
    #[inline]
    pub fn is_derived(&self) -> bool {
        self.derived
    }

    /// Whether this node is a DAG root (its own parent).
    #[inline]
    pub fn is_root(&self) -> bool {
        self.depth == 0
    }
}

/// Storage counters for the overlay DAG.
///
/// `delta_facts` counts fact-id slots physically stored (flat sets plus
/// chain overlays and deltas); `materialized_facts` counts the slots the
/// pre-overlay representation would have stored — one full copy of every
/// database per node. Their ratio is the sharing won by the DAG.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OverlayStats {
    /// Databases interned (DAG nodes).
    pub nodes: u64,
    /// Nodes holding a materialized fact set (roots + flattened nodes).
    pub flat_nodes: u64,
    /// Chain extensions promoted to flat by [`FLATTEN_THRESHOLD`].
    pub flattens: u64,
    /// Fact-id slots physically stored across all nodes.
    pub delta_facts: u64,
    /// Fact-id slots a fully-materialized store would hold.
    pub materialized_facts: u64,
}

/// An intern table over databases, supporting O(|delta|) extension.
///
/// Databases form a join-semilattice under union; [`DbStore::extend`] is the
/// only constructor besides [`DbStore::intern_facts`], and both canonicalize
/// over fact sets, so equal sets always share one [`DbId`] — giving the
/// engines O(1) database equality and compact memo keys.
#[derive(Default)]
pub struct DbStore {
    store: FactStore,
    entries: Vec<DbEntry>,
    /// Canonicalization buckets: (set length, set hash) → candidate ids.
    canon: FxHashMap<(u32, u64), SmallVec<DbId, 2>>,
    stats: OverlayStats,
    /// Largest [`DbEntry::depth`] interned so far (O(1) budget probes).
    max_depth: u32,
}

/// SplitMix64 finalizer — mixes a fact id into an avalanche hash whose
/// XOR over a set is order-independent yet collision-resistant enough to
/// serve as a canonicalization bucket key.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn fact_hash(f: FactId) -> u64 {
    mix(f.0 as u64)
}

/// Merges two sorted, disjoint fact-id slices into one sorted vector.
fn merge_sorted(a: &[FactId], b: &[FactId]) -> Vec<FactId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl DbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the underlying fact interner.
    pub fn facts(&self) -> &FactStore {
        &self.store
    }

    /// Interns a ground fact.
    pub fn intern_fact(&mut self, fact: GroundAtom) -> FactId {
        self.store.intern(fact)
    }

    /// The DAG node for database `id`.
    pub fn entry(&self, id: DbId) -> &DbEntry {
        &self.entries[id.index()]
    }

    /// Number of distinct databases interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no databases have been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage counters for the overlay DAG.
    pub fn overlay_stats(&self) -> OverlayStats {
        self.stats
    }

    /// Largest extension depth of any interned database.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Whether database `db` contains fact `f`.
    #[inline]
    pub fn contains(&self, db: DbId, f: FactId) -> bool {
        let e = &self.entries[db.index()];
        if e.overlay.binary_search(&f).is_ok() {
            return true;
        }
        if e.neg_overlay.binary_search(&f).is_ok() {
            return false;
        }
        self.flat_facts(e.croot).binary_search(&f).is_ok()
    }

    /// Order-independent fingerprint of the facts `db` masks out of its
    /// flat root — `0` iff the node subtracts nothing. Cache keys mix this
    /// in so a `del:` overlay can never alias a positive-only node.
    #[inline]
    pub fn neg_fingerprint(&self, db: DbId) -> u64 {
        let e = &self.entries[db.index()];
        e.neg_overlay
            .iter()
            .fold(e.neg_overlay.len() as u64, |acc, &f| acc ^ fact_hash(f))
    }

    /// The materialized sorted fact set of a flat node.
    #[inline]
    pub(crate) fn flat_facts(&self, flat: DbId) -> &[FactId] {
        &self.entries[flat.index()]
            .flat
            .as_ref()
            .expect("croot must be flat")
            .facts
    }

    /// The shared per-predicate index of a flat node.
    #[inline]
    pub(crate) fn flat_by_pred(&self, flat: DbId) -> &FxHashMap<Symbol, Vec<FactId>> {
        &self.entries[flat.index()]
            .flat
            .as_ref()
            .expect("croot must be flat")
            .by_pred
    }

    /// The shared argument-level index of a flat node.
    #[inline]
    pub(crate) fn flat_by_arg(&self, flat: DbId) -> &FxHashMap<(Symbol, u32, Symbol), Vec<FactId>> {
        &self.entries[flat.index()]
            .flat
            .as_ref()
            .expect("croot must be flat")
            .by_arg
    }

    /// Iterates the fact ids of `db` in sorted order.
    pub fn iter_fact_ids(&self, db: DbId) -> impl Iterator<Item = FactId> + '_ {
        let e = &self.entries[db.index()];
        MergeIds {
            a: self.flat_facts(e.croot),
            sub: &e.neg_overlay,
            b: &e.overlay,
        }
    }

    /// Interns the database consisting of exactly `facts` (deduplicated).
    pub fn intern_facts(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> DbId {
        let mut ids: Vec<FactId> = facts.into_iter().map(|f| self.store.intern(f)).collect();
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// Interns a [`Database`] value.
    pub fn intern_database(&mut self, db: &Database) -> DbId {
        self.intern_facts(db.iter_facts())
    }

    /// Returns the database `base ∪ additions`.
    ///
    /// If every addition is already present, returns `base` itself — the
    /// engines rely on this to detect the "degenerate hypothetical" case
    /// where `A[add: C̄]` collapses to a plain premise. Otherwise the new
    /// node stores only its delta and (bounded) overlay; the full fact set
    /// is never copied unless the overlay crosses [`FLATTEN_THRESHOLD`].
    pub fn extend(&mut self, base: DbId, additions: &[FactId]) -> DbId {
        let mut fresh: SmallVec<FactId, 8> = additions
            .iter()
            .copied()
            .filter(|&id| !self.contains(base, id))
            .collect();
        if fresh.is_empty() {
            return base;
        }
        fresh.as_mut_slice().sort_unstable();
        // `additions` may repeat a fact; keep the first of each run.
        let mut dedup: SmallVec<FactId, 8> = SmallVec::new();
        for f in fresh.iter() {
            if dedup.as_slice().last() != Some(&f) {
                dedup.push(f);
            }
        }
        let fresh = dedup;

        let base_entry = &self.entries[base.index()];
        let croot = base_entry.croot;
        let new_depth = base_entry.depth + 1;
        let new_len = base_entry.len + fresh.len() as u32;
        let new_hash = base_entry.set_hash ^ fresh.iter().fold(0u64, |acc, f| acc ^ fact_hash(f));
        // A fresh fact that is a member of the flat root must currently be
        // masked by the negative overlay — adding it back *revives* it
        // (shrinks the mask) rather than growing the positive overlay.
        let flat = self.flat_facts(croot);
        let (revived, added): (Vec<FactId>, Vec<FactId>) =
            fresh.iter().partition(|f| flat.binary_search(f).is_ok());
        let overlay = merge_sorted(&base_entry.overlay, &added);
        let neg_overlay: Vec<FactId> = base_entry
            .neg_overlay
            .iter()
            .copied()
            .filter(|f| revived.binary_search(f).is_err())
            .collect();

        self.insert_node(
            base,
            croot,
            SmallVec::from_slice(&fresh),
            SmallVec::new(),
            overlay,
            neg_overlay,
            new_len,
            new_hash,
            new_depth,
        )
    }

    /// Returns the database `base ∖ removals`.
    ///
    /// The removal dual of [`DbStore::extend`]: if no removal is present,
    /// returns `base` itself — the engines rely on this to detect the
    /// degenerate `A[del: C̄]` where every `C̄` is already absent. Otherwise
    /// the new node stores only its (signed) delta: removals of overlay
    /// facts shrink the positive overlay, removals of flat-root facts grow
    /// the negative overlay. Cost is O(|delta| + |overlay|), never O(|DB|)
    /// unless the combined overlay crosses [`FLATTEN_THRESHOLD`].
    pub fn shrink(&mut self, base: DbId, removals: &[FactId]) -> DbId {
        let mut gone: SmallVec<FactId, 8> = removals
            .iter()
            .copied()
            .filter(|&id| self.contains(base, id))
            .collect();
        if gone.is_empty() {
            return base;
        }
        gone.as_mut_slice().sort_unstable();
        let mut dedup: SmallVec<FactId, 8> = SmallVec::new();
        for f in gone.iter() {
            if dedup.as_slice().last() != Some(&f) {
                dedup.push(f);
            }
        }
        let gone = dedup;

        let base_entry = &self.entries[base.index()];
        let croot = base_entry.croot;
        let new_depth = base_entry.depth + 1;
        let new_len = base_entry.len - gone.len() as u32;
        let new_hash = base_entry.set_hash ^ gone.iter().fold(0u64, |acc, f| acc ^ fact_hash(f));
        // Removals of overlay members just drop out of the overlay; the
        // rest are flat-root members and join the mask.
        let masked: Vec<FactId> = gone
            .iter()
            .filter(|f| base_entry.overlay.binary_search(f).is_err())
            .collect();
        let overlay: Vec<FactId> = base_entry
            .overlay
            .iter()
            .copied()
            .filter(|f| gone.as_slice().binary_search(f).is_err())
            .collect();
        let neg_overlay = merge_sorted(&base_entry.neg_overlay, &masked);

        self.insert_node(
            base,
            croot,
            SmallVec::new(),
            SmallVec::from_slice(&gone),
            overlay,
            neg_overlay,
            new_len,
            new_hash,
            new_depth,
        )
    }

    /// Returns the database `(base ∖ removals) ∪ additions`.
    ///
    /// The goal database of `A[add: B̄, del: C̄]`: removals apply first, so
    /// a fact listed in both ends up present (`add:` wins). Both halves
    /// canonicalize, so a round trip `apply(apply(db, ∅, C̄), C̄, ∅)` that
    /// restores the original set returns the original [`DbId`].
    pub fn apply(&mut self, base: DbId, additions: &[FactId], removals: &[FactId]) -> DbId {
        let shrunk = self.shrink(base, removals);
        self.extend(shrunk, additions)
    }

    /// Interns a chain node with the given signed delta and overlays,
    /// canonicalizing against existing sets and flattening when the
    /// combined overlay crosses [`FLATTEN_THRESHOLD`].
    #[allow(clippy::too_many_arguments)]
    fn insert_node(
        &mut self,
        parent: DbId,
        croot: DbId,
        delta: SmallVec<FactId, 4>,
        neg_delta: SmallVec<FactId, 4>,
        overlay: Vec<FactId>,
        neg_overlay: Vec<FactId>,
        new_len: u32,
        new_hash: u64,
        new_depth: u32,
    ) -> DbId {
        // Canonicalization: an equal fact set may already exist (reached by
        // a different extension order or from a different root).
        if let Some(bucket) = self.canon.get(&(new_len, new_hash)) {
            for &cand in bucket.as_slice() {
                if self.set_equals(cand, croot, &overlay, &neg_overlay) {
                    return cand;
                }
            }
        }

        let id = DbId(u32::try_from(self.entries.len()).expect("db store overflow"));
        let entry = if overlay.len() + neg_overlay.len() >= FLATTEN_THRESHOLD {
            // Promote to flat: one O(|DB|) materialization bounds every
            // descendant's read cost to its own (short) overlay.
            let facts: Vec<FactId> = MergeIds {
                a: self.flat_facts(croot),
                sub: &neg_overlay,
                b: &overlay,
            }
            .collect();
            let facts = Arc::new(facts);
            let (by_pred, by_arg) = self.build_indexes(&facts);
            self.stats.flattens += 1;
            self.stats.flat_nodes += 1;
            self.stats.delta_facts += facts.len() as u64;
            DbEntry {
                parent,
                croot: id,
                delta,
                neg_delta,
                overlay: Arc::new(Vec::new()),
                neg_overlay: Arc::new(Vec::new()),
                len: new_len,
                set_hash: new_hash,
                depth: new_depth,
                derived: false,
                flat: Some(FlatRepr {
                    facts,
                    by_pred,
                    by_arg,
                }),
            }
        } else {
            self.stats.delta_facts +=
                (delta.len() + neg_delta.len() + overlay.len() + neg_overlay.len()) as u64;
            DbEntry {
                parent,
                croot,
                delta,
                neg_delta,
                overlay: Arc::new(overlay),
                neg_overlay: Arc::new(neg_overlay),
                len: new_len,
                set_hash: new_hash,
                depth: new_depth,
                derived: false,
                flat: None,
            }
        };
        self.max_depth = self.max_depth.max(new_depth);
        self.stats.nodes += 1;
        self.stats.materialized_facts += new_len as u64;
        self.entries.push(entry);
        self.canon.entry((new_len, new_hash)).or_default().push(id);
        id
    }

    /// Materializes database `id` as a [`Database`] value.
    pub fn to_database(&self, id: DbId) -> Database {
        self.iter_fact_ids(id)
            .map(|f| self.store.fact(f).clone())
            .collect()
    }

    /// Marks node `id` as a derived evaluation artifact.
    ///
    /// Derived nodes are omitted from [`DbStore::encode_dag`] — after a
    /// restore the engines recompute them on demand — unless they are
    /// roots (a root anchors every chain hanging off it).
    pub fn mark_derived(&mut self, id: DbId) {
        self.entries[id.index()].derived = true;
    }

    /// Serializes the DAG in topological order (parents before children).
    ///
    /// Nodes marked [`DbStore::mark_derived`] are skipped (roots always
    /// kept); each kept non-root node is written as a delta against its
    /// nearest kept ancestor, which is well-defined because extension only
    /// ever grows a chain. Returns the kept [`DbId`]s in encoded order so
    /// callers can address specific nodes by ordinal after a decode.
    ///
    /// The encoding is self-contained: a compact table of the referenced
    /// ground facts precedes the node list, so the decoder rebuilds its
    /// own [`FactStore`] (fact ids are not stable across encode/decode,
    /// fact *sets* are).
    pub fn encode_dag(&self, enc: &mut crate::serialize::Encoder) -> Vec<DbId> {
        // Ids are allocated parent-first, so ascending id order is a
        // topological order of the DAG.
        let kept: Vec<DbId> = (0..self.entries.len() as u32)
            .map(DbId)
            .filter(|&id| {
                let e = &self.entries[id.index()];
                !e.derived || e.is_root()
            })
            .collect();
        let ordinal: FxHashMap<DbId, u32> = kept
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        // Per kept node: the signed fact-id delta it contributes (full set
        // for roots; adds and dels over the nearest kept ancestor else).
        type Contribution = (Option<u32>, Vec<FactId>, Vec<FactId>);
        let mut contributions: Vec<Contribution> = Vec::with_capacity(kept.len());
        for &id in &kept {
            let e = &self.entries[id.index()];
            if e.is_root() {
                contributions.push((None, self.iter_fact_ids(id).collect(), Vec::new()));
            } else {
                // Walk the parent chain to the nearest kept ancestor;
                // roots are always kept, so this terminates.
                let mut anc = e.parent;
                while !ordinal.contains_key(&anc) {
                    anc = self.entries[anc.index()].parent;
                }
                let anc_facts: Vec<FactId> = self.iter_fact_ids(anc).collect();
                let adds: Vec<FactId> = self
                    .iter_fact_ids(id)
                    .filter(|f| anc_facts.binary_search(f).is_err())
                    .collect();
                let dels: Vec<FactId> = anc_facts
                    .iter()
                    .copied()
                    .filter(|&f| !self.contains(id, f))
                    .collect();
                contributions.push((Some(ordinal[&anc]), adds, dels));
            }
        }
        // Compact fact table: only the facts the kept nodes reference.
        let mut fact_index: FxHashMap<FactId, u32> = FxHashMap::default();
        let mut fact_list: Vec<FactId> = Vec::new();
        for (_, adds, dels) in &contributions {
            for &f in adds.iter().chain(dels) {
                fact_index.entry(f).or_insert_with(|| {
                    fact_list.push(f);
                    fact_list.len() as u32 - 1
                });
            }
        }
        enc.u32(fact_list.len() as u32);
        for &f in &fact_list {
            crate::serialize::encode_ground_atom(enc, self.store.fact(f));
        }
        enc.u32(kept.len() as u32);
        for (anc, adds, dels) in &contributions {
            match anc {
                None => enc.u8(0),
                // Tag 1 (adds-only) is kept distinct from tag 2 (signed) so
                // positive-only DAGs encode exactly as they did before
                // negative overlays existed.
                Some(a) if dels.is_empty() => {
                    enc.u8(1);
                    enc.u32(*a);
                }
                Some(a) => {
                    enc.u8(2);
                    enc.u32(*a);
                }
            }
            enc.u32(adds.len() as u32);
            for &f in adds {
                enc.u32(fact_index[&f]);
            }
            if !dels.is_empty() {
                enc.u32(dels.len() as u32);
                for &f in dels {
                    enc.u32(fact_index[&f]);
                }
            }
        }
        kept
    }

    /// Decodes a DAG written by [`DbStore::encode_dag`] into this store.
    ///
    /// Returns the [`DbId`]s of the decoded nodes, index-aligned with the
    /// ordinals returned by the encoder. Fact sets round-trip exactly;
    /// ids and flat/chain placement may differ (canonical interning).
    pub fn decode_dag(
        &mut self,
        dec: &mut crate::serialize::Decoder<'_>,
        symbols: &crate::symbol::SymbolTable,
    ) -> crate::error::Result<Vec<DbId>> {
        use crate::error::Error;
        let nfacts = dec.len_prefix(8)?;
        let mut fact_ids = Vec::with_capacity(nfacts);
        for _ in 0..nfacts {
            let fact = crate::serialize::decode_ground_atom(dec, symbols)?;
            fact_ids.push(self.intern_fact(fact));
        }
        let nnodes = dec.len_prefix(6)?;
        let mut ids: Vec<DbId> = Vec::with_capacity(nnodes);
        for pos in 0..nnodes {
            let tag = dec.u8()?;
            let (anc, signed) = match tag {
                0 => (None, false),
                1 | 2 => {
                    let a = dec.u32()? as usize;
                    if a >= pos {
                        return Err(Error::Invalid(format!(
                            "DAG node {pos} references ancestor {a} out of order"
                        )));
                    }
                    (Some(ids[a]), tag == 2)
                }
                other => {
                    return Err(Error::Invalid(format!(
                        "unknown DAG node tag {other} at node {pos}"
                    )))
                }
            };
            let read_facts = |dec: &mut crate::serialize::Decoder<'_>| {
                let count = dec.len_prefix(4)?;
                let mut out = Vec::with_capacity(count);
                for _ in 0..count {
                    let idx = dec.u32()? as usize;
                    let &f = fact_ids.get(idx).ok_or_else(|| {
                        Error::Invalid(format!("fact index {idx} out of range ({nfacts} facts)"))
                    })?;
                    out.push(f);
                }
                Ok::<_, Error>(out)
            };
            let mut adds = read_facts(dec)?;
            let dels = if signed { read_facts(dec)? } else { Vec::new() };
            let id = match anc {
                None => {
                    adds.sort_unstable();
                    adds.dedup();
                    self.intern_sorted(adds)
                }
                Some(base) => self.apply(base, &adds, &dels),
            };
            ids.push(id);
        }
        Ok(ids)
    }

    /// Whether `cand`'s fact set equals `(croot ∖ neg_overlay) ∪ overlay`.
    fn set_equals(
        &self,
        cand: DbId,
        croot: DbId,
        overlay: &[FactId],
        neg_overlay: &[FactId],
    ) -> bool {
        let ce = &self.entries[cand.index()];
        if ce.croot == croot {
            // Same flat root: both signed overlays are sorted sets over it.
            return ce.overlay.as_slice() == overlay && ce.neg_overlay.as_slice() == neg_overlay;
        }
        // Different roots (rare): compare full sorted iterations.
        let a = MergeIds {
            a: self.flat_facts(ce.croot),
            sub: &ce.neg_overlay,
            b: &ce.overlay,
        };
        let b = MergeIds {
            a: self.flat_facts(croot),
            sub: neg_overlay,
            b: overlay,
        };
        a.eq(b)
    }

    /// Builds the per-predicate and argument-level indexes of a flat node.
    #[allow(clippy::type_complexity)]
    fn build_indexes(
        &self,
        facts: &[FactId],
    ) -> (
        Arc<FxHashMap<Symbol, Vec<FactId>>>,
        Arc<FxHashMap<(Symbol, u32, Symbol), Vec<FactId>>>,
    ) {
        let mut by_pred: FxHashMap<Symbol, Vec<FactId>> = FxHashMap::default();
        let mut by_arg: FxHashMap<(Symbol, u32, Symbol), Vec<FactId>> = FxHashMap::default();
        for &f in facts {
            let fact = self.store.fact(f);
            by_pred.entry(fact.pred).or_default().push(f);
            for (pos, &c) in fact.args.iter().enumerate() {
                by_arg
                    .entry((fact.pred, pos as u32, c))
                    .or_default()
                    .push(f);
            }
        }
        (Arc::new(by_pred), Arc::new(by_arg))
    }

    fn intern_sorted(&mut self, ids: Vec<FactId>) -> DbId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be sorted+dedup"
        );
        let len = ids.len() as u32;
        let set_hash = ids.iter().fold(0u64, |acc, &f| acc ^ fact_hash(f));
        if let Some(bucket) = self.canon.get(&(len, set_hash)) {
            for &cand in bucket.as_slice() {
                if self.iter_fact_ids(cand).eq(ids.iter().copied()) {
                    return cand;
                }
            }
        }
        let facts = Arc::new(ids);
        let (by_pred, by_arg) = self.build_indexes(&facts);
        let id = DbId(u32::try_from(self.entries.len()).expect("db store overflow"));
        self.stats.nodes += 1;
        self.stats.flat_nodes += 1;
        self.stats.delta_facts += facts.len() as u64;
        self.stats.materialized_facts += facts.len() as u64;
        self.entries.push(DbEntry {
            parent: id,
            croot: id,
            delta: SmallVec::new(),
            neg_delta: SmallVec::new(),
            overlay: Arc::new(Vec::new()),
            neg_overlay: Arc::new(Vec::new()),
            len,
            set_hash,
            depth: 0,
            derived: false,
            flat: Some(FlatRepr {
                facts,
                by_pred,
                by_arg,
            }),
        });
        self.canon.entry((len, set_hash)).or_default().push(id);
        id
    }
}

/// Sorted merge of `(a ∖ sub) ∪ b`, where `sub ⊆ a` and `b` is disjoint
/// from `a`; all three slices sorted.
struct MergeIds<'a> {
    a: &'a [FactId],
    sub: &'a [FactId],
    b: &'a [FactId],
}

impl Iterator for MergeIds<'_> {
    type Item = FactId;

    fn next(&mut self) -> Option<FactId> {
        // Skip the masked prefix of `a`; `sub ⊆ a` and both are sorted, so
        // walking them in lockstep suppresses exactly the masked members.
        while let (Some(&x), Some(&s)) = (self.a.first(), self.sub.first()) {
            if s < x {
                self.sub = &self.sub[1..];
            } else if s == x {
                self.a = &self.a[1..];
                self.sub = &self.sub[1..];
            } else {
                break;
            }
        }
        match (self.a.first(), self.b.first()) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    self.a = &self.a[1..];
                    Some(x)
                } else {
                    self.b = &self.b[1..];
                    Some(y)
                }
            }
            (Some(&x), None) => {
                self.a = &self.a[1..];
                Some(x)
            }
            (None, Some(&y)) => {
                self.b = &self.b[1..];
                Some(y)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact because `sub ⊆ a` (every remaining mask member suppresses
        // exactly one remaining member of `a`).
        let n = self.a.len() + self.b.len() - self.sub.len();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    #[test]
    fn fact_interning_is_idempotent() {
        let mut fs = FactStore::new();
        let a = fs.intern(fact(0, &[1]));
        let b = fs.intern(fact(0, &[1]));
        assert_eq!(a, b);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.fact(a), &fact(0, &[1]));
    }

    #[test]
    fn equal_fact_sets_share_db_id() {
        let mut dbs = DbStore::new();
        let a = dbs.intern_facts([fact(0, &[1]), fact(0, &[2])]);
        let b = dbs.intern_facts([fact(0, &[2]), fact(0, &[1])]);
        assert_eq!(a, b);
        assert_eq!(dbs.len(), 1);
    }

    #[test]
    fn extend_with_present_facts_is_identity() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[1]));
        assert_eq!(dbs.extend(base, &[f]), base);
    }

    #[test]
    fn extend_with_new_fact_grows() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[2]));
        let bigger = dbs.extend(base, &[f]);
        assert_ne!(bigger, base);
        assert_eq!(dbs.entry(bigger).len(), 2);
        assert!(dbs.contains(bigger, f));
        // Extending two different ways to the same set yields the same id.
        let g = dbs.intern_fact(fact(0, &[1]));
        let other = dbs.intern_facts([fact(0, &[2])]);
        let merged = dbs.extend(other, &[g]);
        assert_eq!(merged, bigger);
    }

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 2]));
        db.insert(fact(3, &[4]));
        let mut dbs = DbStore::new();
        let id = dbs.intern_database(&db);
        assert_eq!(dbs.to_database(id), db);
    }

    #[test]
    fn extend_stores_delta_not_full_copy() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..20).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[99]));
        let bigger = dbs.extend(base, &[f]);
        let e = dbs.entry(bigger);
        assert!(!e.is_flat(), "small delta must stay a chain node");
        assert_eq!(e.parent(), base);
        assert_eq!(e.croot(), base, "base is flat, so it is the chain root");
        assert_eq!(e.delta(), &[f]);
        assert_eq!(e.overlay(), &[f]);
        assert_eq!(e.len(), 21);
        let stats = dbs.overlay_stats();
        // Base stores 20 slots, the extension 2 (delta + overlay copy).
        assert_eq!(stats.delta_facts, 22);
        assert_eq!(stats.materialized_facts, 41);
        assert!(stats.delta_facts < stats.materialized_facts);
    }

    #[test]
    fn extension_chain_shares_flat_root_until_threshold() {
        let mut dbs = DbStore::new();
        let root = dbs.intern_facts([fact(0, &[0])]);
        let mut db = root;
        for i in 1..FLATTEN_THRESHOLD as u32 {
            let f = dbs.intern_fact(fact(0, &[i]));
            db = dbs.extend(db, &[f]);
            let e = dbs.entry(db);
            assert_eq!(e.croot(), root);
            assert_eq!(e.overlay().len(), i as usize);
        }
        assert_eq!(dbs.overlay_stats().flattens, 0);
        // The next extension crosses the threshold and flattens.
        let f = dbs.intern_fact(fact(0, &[1000]));
        let flat = dbs.extend(db, &[f]);
        let e = dbs.entry(flat);
        assert!(e.is_flat());
        assert_eq!(e.croot(), flat);
        assert_eq!(e.len(), FLATTEN_THRESHOLD + 1);
        assert_eq!(dbs.overlay_stats().flattens, 1);
        // Descendants of the flat node index against it, not the old root.
        let g = dbs.intern_fact(fact(0, &[2000]));
        let child = dbs.extend(flat, &[g]);
        assert_eq!(dbs.entry(child).croot(), flat);
    }

    #[test]
    fn canonicalization_unifies_across_extension_orders() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(1, &[2]));
        let g = dbs.intern_fact(fact(2, &[3]));
        let just_f = dbs.extend(base, &[f]);
        let fg = dbs.extend(just_f, &[g]);
        let just_g = dbs.extend(base, &[g]);
        let gf = dbs.extend(just_g, &[f]);
        assert_eq!(fg, gf, "order of hypothetical additions is immaterial");
        let both = dbs.extend(base, &[f, g]);
        assert_eq!(both, fg, "batch extension unifies with chains");
    }

    #[test]
    fn iter_fact_ids_is_sorted_merge() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[5]), fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[3]));
        let db = dbs.extend(base, &[f]);
        let ids: Vec<FactId> = dbs.iter_fact_ids(db).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn dag_roundtrip_preserves_fact_sets_and_skips_derived() {
        use crate::serialize::{Decoder, Encoder};
        use crate::symbol::SymbolTable;
        let mut syms = SymbolTable::new();
        for i in 0..64 {
            syms.intern(&format!("s{i}"));
        }
        let mut dbs = DbStore::new();
        let root = dbs.intern_facts((0..3).map(|i| fact(0, &[i])));
        let mut chain = vec![root];
        for i in 3..40 {
            let f = dbs.intern_fact(fact(0, &[i]));
            chain.push(dbs.extend(*chain.last().unwrap(), &[f]));
        }
        // A side branch marked derived: must be skipped, and the node
        // after it must re-anchor on the nearest kept ancestor.
        let f = dbs.intern_fact(fact(1, &[7]));
        let derived = dbs.extend(root, &[f]);
        let g = dbs.intern_fact(fact(1, &[8]));
        let kept_child = dbs.extend(derived, &[g]);
        dbs.mark_derived(derived);

        let mut enc = Encoder::new();
        let kept = dbs.encode_dag(&mut enc);
        assert!(!kept.contains(&derived));
        assert!(kept.contains(&kept_child));
        let bytes = enc.finish();

        let mut back = DbStore::new();
        let ids = back
            .decode_dag(&mut Decoder::new(&bytes), &syms)
            .expect("decode");
        assert_eq!(ids.len(), kept.len());
        for (old, new) in kept.iter().zip(ids.iter()) {
            assert_eq!(
                dbs.to_database(*old),
                back.to_database(*new),
                "fact set of node {old:?} survives the roundtrip"
            );
        }
        // The restored chain reports the same lengths (flatten threshold
        // was crossed, exercising flat-node re-encoding).
        assert!(dbs.overlay_stats().flattens > 0);
    }

    #[test]
    fn dag_decode_rejects_corruption() {
        use crate::serialize::{Decoder, Encoder};
        use crate::symbol::SymbolTable;
        let mut syms = SymbolTable::new();
        syms.intern("s0");
        let mut dbs = DbStore::new();
        dbs.intern_facts([fact(0, &[0])]);
        let mut enc = Encoder::new();
        dbs.encode_dag(&mut enc);
        let bytes = enc.finish();
        // Truncations at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            let mut fresh = DbStore::new();
            let _ = fresh.decode_dag(&mut Decoder::new(&bytes[..cut]), &syms);
        }
        // Flipping the node tag to garbage errors out.
        let mut bad = bytes.clone();
        let tag_pos = bytes.len() - 9; // u8 tag + u32 count + u32 fact idx
        bad[tag_pos] = 9;
        assert!(DbStore::new()
            .decode_dag(&mut Decoder::new(&bad), &syms)
            .is_err());
    }

    #[test]
    fn shrink_with_absent_facts_is_identity() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[9]));
        assert_eq!(dbs.shrink(base, &[f]), base);
    }

    #[test]
    fn shrink_masks_flat_root_facts() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..10).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[3]));
        let smaller = dbs.shrink(base, &[f]);
        assert_ne!(smaller, base);
        let e = dbs.entry(smaller);
        assert!(!e.is_flat());
        assert_eq!(e.neg_delta(), &[f]);
        assert_eq!(e.neg_overlay(), &[f]);
        assert_eq!(e.len(), 9);
        assert!(!dbs.contains(smaller, f));
        assert!(dbs.contains(base, f), "base is untouched");
        let ids: Vec<FactId> = dbs.iter_fact_ids(smaller).collect();
        assert_eq!(ids.len(), 9);
        assert!(!ids.contains(&f));
    }

    #[test]
    fn shrink_of_overlay_fact_cancels_the_overlay() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[2]));
        let bigger = dbs.extend(base, &[f]);
        // Removing the overlay fact restores the original set — and must
        // canonicalize back to the original id.
        assert_eq!(dbs.shrink(bigger, &[f]), base);
    }

    #[test]
    fn extend_revives_masked_facts() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..10).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[3]));
        let smaller = dbs.shrink(base, &[f]);
        // Re-adding the masked fact restores the original set and id.
        assert_eq!(dbs.extend(smaller, &[f]), base);
    }

    #[test]
    fn apply_removals_first_so_adds_win() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..5).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[2]));
        let g = dbs.intern_fact(fact(0, &[99]));
        let db = dbs.apply(base, &[f, g], &[f]);
        assert!(dbs.contains(db, f), "a fact in both lists stays present");
        assert!(dbs.contains(db, g));
        assert_eq!(dbs.entry(db).len(), 6);
    }

    #[test]
    fn neg_fingerprint_distinguishes_masked_nodes() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..10).map(|i| fact(0, &[i])));
        assert_eq!(dbs.neg_fingerprint(base), 0);
        let f = dbs.intern_fact(fact(0, &[3]));
        let smaller = dbs.shrink(base, &[f]);
        assert_ne!(dbs.neg_fingerprint(smaller), 0);
    }

    #[test]
    fn shrink_canonicalizes_across_removal_orders() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..10).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[3]));
        let g = dbs.intern_fact(fact(0, &[7]));
        let just_f = dbs.shrink(base, &[f]);
        let fg = dbs.shrink(just_f, &[g]);
        let just_g = dbs.shrink(base, &[g]);
        let gf = dbs.shrink(just_g, &[f]);
        assert_eq!(fg, gf, "order of removals is immaterial");
        assert_eq!(dbs.shrink(base, &[f, g]), fg, "batch removal unifies");
    }

    #[test]
    fn shrink_chain_flattens_at_threshold() {
        let n = 2 * FLATTEN_THRESHOLD as u32;
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts((0..n).map(|i| fact(0, &[i])));
        let mut db = base;
        for i in 0..FLATTEN_THRESHOLD as u32 {
            let f = dbs.intern_fact(fact(0, &[i]));
            db = dbs.shrink(db, &[f]);
        }
        let e = dbs.entry(db);
        assert!(e.is_flat(), "mask crossing the threshold must flatten");
        assert_eq!(e.len(), FLATTEN_THRESHOLD);
        assert_eq!(dbs.neg_fingerprint(db), 0, "flat nodes mask nothing");
    }

    #[test]
    fn dag_roundtrip_preserves_negative_overlays() {
        use crate::serialize::{Decoder, Encoder};
        use crate::symbol::SymbolTable;
        let mut syms = SymbolTable::new();
        for i in 0..32 {
            syms.intern(&format!("s{i}"));
        }
        let mut dbs = DbStore::new();
        let root = dbs.intern_facts((0..10).map(|i| fact(0, &[i])));
        let f = dbs.intern_fact(fact(0, &[4]));
        let g = dbs.intern_fact(fact(1, &[1]));
        let h = dbs.intern_fact(fact(0, &[7]));
        let shrunk = dbs.shrink(root, &[f]);
        let mixed = dbs.apply(shrunk, &[g], &[h]);

        let mut enc = Encoder::new();
        let kept = dbs.encode_dag(&mut enc);
        assert!(kept.contains(&shrunk) && kept.contains(&mixed));
        let bytes = enc.finish();

        let mut back = DbStore::new();
        let ids = back
            .decode_dag(&mut Decoder::new(&bytes), &syms)
            .expect("decode");
        for (old, new) in kept.iter().zip(ids.iter()) {
            assert_eq!(dbs.to_database(*old), back.to_database(*new));
        }
    }

    #[test]
    fn extend_dedups_repeated_additions() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[2]));
        let db = dbs.extend(base, &[f, f, f]);
        assert_eq!(dbs.entry(db).len(), 2);
        assert_eq!(dbs.entry(db).delta(), &[f]);
    }
}
