//! Interners for ground facts and for whole databases.
//!
//! Hypothetical inference explores a *lattice of databases*: every premise
//! `A[add: C̄]` moves the proof to a strictly larger database. The engines
//! therefore intern each ground fact to a dense [`FactId`] and each database
//! (a sorted set of fact ids) to a dense [`DbId`], so that memo tables can
//! be keyed by plain `(FactId, DbId)` pairs instead of hashing whole fact
//! sets at every lookup.

use crate::atom::GroundAtom;
use crate::database::Database;
use crate::hasher::FxHashMap;
use crate::symbol::Symbol;
use std::sync::Arc;

/// Dense id of an interned ground fact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// Dense index of this fact.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table for ground facts.
#[derive(Default, Clone)]
pub struct FactStore {
    facts: Vec<GroundAtom>,
    ids: FxHashMap<GroundAtom, FactId>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `fact`, returning its id.
    pub fn intern(&mut self, fact: GroundAtom) -> FactId {
        if let Some(&id) = self.ids.get(&fact) {
            return id;
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact store overflow"));
        self.facts.push(fact.clone());
        self.ids.insert(fact, id);
        id
    }

    /// Looks up an already-interned fact.
    pub fn lookup(&self, fact: &GroundAtom) -> Option<FactId> {
        self.ids.get(fact).copied()
    }

    /// The fact with id `id`.
    pub fn fact(&self, id: FactId) -> &GroundAtom {
        &self.facts[id.index()]
    }

    /// Number of interned facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts have been interned.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// Dense id of an interned database (a set of facts).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DbId(pub u32);

impl DbId {
    /// Dense index of this database.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned database: its sorted fact ids plus a per-predicate index.
#[derive(Debug)]
pub struct DbEntry {
    /// Sorted, deduplicated fact ids — the canonical identity of this DB.
    pub facts: Arc<Vec<FactId>>,
    /// Fact ids grouped by predicate, for premise matching.
    pub by_pred: Arc<FxHashMap<Symbol, Vec<FactId>>>,
}

impl DbEntry {
    /// Whether this database contains `id`.
    #[inline]
    pub fn contains(&self, id: FactId) -> bool {
        self.facts.binary_search(&id).is_ok()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The fact ids stored for `pred`.
    pub fn facts_of(&self, pred: Symbol) -> &[FactId] {
        self.by_pred.get(&pred).map_or(&[], |v| v.as_slice())
    }
}

/// An intern table over databases, supporting cheap extension.
///
/// Databases form a join-semilattice under union; [`DbStore::extend`] is the
/// only constructor besides [`DbStore::intern_facts`], so equal fact sets
/// always share one [`DbId`] — giving the engines O(1) database equality and
/// compact memo keys.
#[derive(Default)]
pub struct DbStore {
    store: FactStore,
    entries: Vec<DbEntry>,
    ids: FxHashMap<Arc<Vec<FactId>>, DbId>,
}

impl DbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the underlying fact interner.
    pub fn facts(&self) -> &FactStore {
        &self.store
    }

    /// Interns a ground fact.
    pub fn intern_fact(&mut self, fact: GroundAtom) -> FactId {
        self.store.intern(fact)
    }

    /// The entry for database `id`.
    pub fn entry(&self, id: DbId) -> &DbEntry {
        &self.entries[id.index()]
    }

    /// Number of distinct databases interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no databases have been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Interns the database consisting of exactly `facts` (deduplicated).
    pub fn intern_facts(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> DbId {
        let mut ids: Vec<FactId> = facts.into_iter().map(|f| self.store.intern(f)).collect();
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// Interns a [`Database`] value.
    pub fn intern_database(&mut self, db: &Database) -> DbId {
        self.intern_facts(db.iter_facts())
    }

    /// Returns the database `base ∪ additions`.
    ///
    /// If every addition is already present, returns `base` itself — the
    /// engines rely on this to detect the "degenerate hypothetical" case
    /// where `A[add: C̄]` collapses to a plain premise.
    pub fn extend(&mut self, base: DbId, additions: &[FactId]) -> DbId {
        let entry = &self.entries[base.index()];
        let fresh: Vec<FactId> = additions
            .iter()
            .copied()
            .filter(|&id| !entry.contains(id))
            .collect();
        if fresh.is_empty() {
            return base;
        }
        let mut ids = entry.facts.as_ref().clone();
        ids.extend(fresh);
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// Materializes database `id` as a [`Database`] value.
    pub fn to_database(&self, id: DbId) -> Database {
        self.entry(id)
            .facts
            .iter()
            .map(|&f| self.store.fact(f).clone())
            .collect()
    }

    fn intern_sorted(&mut self, ids: Vec<FactId>) -> DbId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be sorted+dedup"
        );
        let key = Arc::new(ids);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let mut by_pred: FxHashMap<Symbol, Vec<FactId>> = FxHashMap::default();
        for &f in key.iter() {
            by_pred.entry(self.store.fact(f).pred).or_default().push(f);
        }
        let db_id = DbId(u32::try_from(self.entries.len()).expect("db store overflow"));
        self.entries.push(DbEntry {
            facts: Arc::clone(&key),
            by_pred: Arc::new(by_pred),
        });
        self.ids.insert(key, db_id);
        db_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    #[test]
    fn fact_interning_is_idempotent() {
        let mut fs = FactStore::new();
        let a = fs.intern(fact(0, &[1]));
        let b = fs.intern(fact(0, &[1]));
        assert_eq!(a, b);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.fact(a), &fact(0, &[1]));
    }

    #[test]
    fn equal_fact_sets_share_db_id() {
        let mut dbs = DbStore::new();
        let a = dbs.intern_facts([fact(0, &[1]), fact(0, &[2])]);
        let b = dbs.intern_facts([fact(0, &[2]), fact(0, &[1])]);
        assert_eq!(a, b);
        assert_eq!(dbs.len(), 1);
    }

    #[test]
    fn extend_with_present_facts_is_identity() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[1]));
        assert_eq!(dbs.extend(base, &[f]), base);
    }

    #[test]
    fn extend_with_new_fact_grows() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1])]);
        let f = dbs.intern_fact(fact(0, &[2]));
        let bigger = dbs.extend(base, &[f]);
        assert_ne!(bigger, base);
        assert_eq!(dbs.entry(bigger).len(), 2);
        assert!(dbs.entry(bigger).contains(f));
        // Extending two different ways to the same set yields the same id.
        let g = dbs.intern_fact(fact(0, &[1]));
        let other = dbs.intern_facts([fact(0, &[2])]);
        let merged = dbs.extend(other, &[g]);
        assert_eq!(merged, bigger);
    }

    #[test]
    fn by_pred_groups_facts() {
        let mut dbs = DbStore::new();
        let id = dbs.intern_facts([fact(0, &[1]), fact(1, &[2]), fact(0, &[3])]);
        let entry = dbs.entry(id);
        assert_eq!(entry.facts_of(Symbol(0)).len(), 2);
        assert_eq!(entry.facts_of(Symbol(1)).len(), 1);
        assert_eq!(entry.facts_of(Symbol(9)).len(), 0);
    }

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(fact(0, &[1, 2]));
        db.insert(fact(3, &[4]));
        let mut dbs = DbStore::new();
        let id = dbs.intern_database(&db);
        assert_eq!(dbs.to_database(id), db);
    }
}
