//! Read-only views over interned overlay databases.
//!
//! [`DbView`] answers the questions engines ask of a database —
//! membership, per-predicate enumeration, pattern matching — directly
//! against the overlay DAG of [`DbStore`], without materializing a
//! [`Database`]. A view over a chain node reads the shared per-predicate
//! index of its flat root plus its own (bounded) overlay; matching hands
//! premise patterns the store's interned [`GroundAtom`]s by reference, so
//! no per-candidate allocation happens at all.

use crate::atom::{Atom, GroundAtom};
use crate::database::{bound_position, Database, MatchCounters};
use crate::factstore::{DbId, DbStore, FactId};
use crate::subst::Bindings;
use crate::symbol::Symbol;
use crate::term::Var;

/// A borrowed, read-only view of one interned database.
#[derive(Clone, Copy)]
pub struct DbView<'a> {
    store: &'a DbStore,
    id: DbId,
}

impl<'a> DbView<'a> {
    /// Creates a view of `id` in `store`.
    pub fn new(store: &'a DbStore, id: DbId) -> Self {
        DbView { store, id }
    }

    /// The id of the viewed database.
    #[inline]
    pub fn id(&self) -> DbId {
        self.id
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.store.entry(self.id).len()
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.store.entry(self.id).is_empty()
    }

    /// Whether fact id `f` is present.
    #[inline]
    pub fn contains_id(&self, f: FactId) -> bool {
        self.store.contains(self.id, f)
    }

    /// Whether `fact` is present.
    pub fn contains(&self, fact: &GroundAtom) -> bool {
        self.store
            .facts()
            .lookup(fact)
            .is_some_and(|f| self.contains_id(f))
    }

    /// Iterates all fact ids in sorted order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + 'a {
        self.store.iter_fact_ids(self.id)
    }

    /// Iterates the fact ids stored for `pred`: the shared index of the
    /// flat root (minus any facts this node masks out) first, then this
    /// node's overlay additions.
    pub fn facts_of(&self, pred: Symbol) -> impl Iterator<Item = FactId> + 'a {
        let store = self.store;
        let entry = store.entry(self.id);
        let masked = entry.neg_overlay();
        let rooted = store
            .flat_by_pred(entry.croot())
            .get(&pred)
            .map_or(&[][..], |v| v.as_slice());
        rooted
            .iter()
            .copied()
            .filter(move |f| masked.binary_search(f).is_err())
            .chain(
                entry
                    .overlay()
                    .iter()
                    .copied()
                    .filter(move |&f| store.facts().fact(f).pred == pred),
            )
    }

    /// Iterates the argument tuples stored for `pred`.
    pub fn tuples(&self, pred: Symbol) -> impl Iterator<Item = &'a [Symbol]> {
        let store = self.store;
        self.facts_of(pred)
            .map(move |f| store.facts().fact(f).args.as_slice())
    }

    /// Iterates the fact ids of `pred` whose argument `pos` equals `c`:
    /// a hash probe of the flat root's argument-level index, then a
    /// linear filter of this node's (bounded) overlay.
    pub fn facts_of_bound(
        &self,
        pred: Symbol,
        pos: u32,
        c: Symbol,
    ) -> impl Iterator<Item = FactId> + 'a {
        let store = self.store;
        let entry = store.entry(self.id);
        let masked = entry.neg_overlay();
        let rooted = store
            .flat_by_arg(entry.croot())
            .get(&(pred, pos, c))
            .map_or(&[][..], |v| v.as_slice());
        rooted
            .iter()
            .copied()
            .filter(move |f| masked.binary_search(f).is_err())
            .chain(entry.overlay().iter().copied().filter(move |&f| {
                let fact = store.facts().fact(f);
                fact.pred == pred && fact.args.get(pos as usize) == Some(&c)
            }))
    }

    /// Calls `f` with the undo trail for every fact of `pattern.pred` that
    /// matches `pattern` under `bindings`; `f` returning `true` stops the
    /// scan early (existential check). Bindings are restored between
    /// candidates and after the call.
    ///
    /// Returns `true` if `f` stopped the scan. Mirrors
    /// [`Database::for_each_match`], but matches against the store's
    /// interned facts without allocating per candidate.
    pub fn for_each_match(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let mut counters = MatchCounters::default();
        self.for_each_match_counted(pattern, bindings, &mut counters, f)
    }

    /// Like [`DbView::for_each_match`], but probes the flat root's
    /// argument-level index when the pattern has a bound argument,
    /// recording the probe work in `counters`. Candidate order (flat
    /// root, then overlay) is identical on both paths, so the two entry
    /// points enumerate the same matches in the same order.
    pub fn for_each_match_counted(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        counters: &mut MatchCounters,
        mut f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let store = self.store;
        let mut visit =
            |fid: FactId, counters: &mut MatchCounters, bindings: &mut Bindings| -> bool {
                counters.attempts += 1;
                let fact = store.facts().fact(fid);
                if let Some(trail) = bindings.match_atom(pattern, fact) {
                    let stop = f(bindings);
                    bindings.undo(&trail);
                    return stop;
                }
                false
            };
        if let Some((pos, c)) = bound_position(pattern, bindings) {
            counters.probes += 1;
            let mut any = false;
            for fid in self.facts_of_bound(pattern.pred, pos, c) {
                any = true;
                if visit(fid, counters, bindings) {
                    counters.hits += 1;
                    return true;
                }
            }
            if any {
                counters.hits += 1;
            }
            return false;
        }
        for fid in self.facts_of(pattern.pred) {
            if visit(fid, counters, bindings) {
                return true;
            }
        }
        false
    }

    /// Collects all extensions of `bindings` under which `pattern` matches
    /// a stored fact, as vectors of `(var, value)` pairs for the variables
    /// the match bound. Mirrors [`Database::all_matches`].
    pub fn all_matches(&self, pattern: &Atom, bindings: &mut Bindings) -> Vec<Vec<(Var, Symbol)>> {
        let mut out = Vec::new();
        self.for_each_match(pattern, bindings, |b| {
            let row = pattern
                .vars()
                .filter_map(|v| b.get(v).map(|c| (v, c)))
                .collect();
            out.push(row);
            false
        });
        out
    }

    /// Materializes the view as an owned [`Database`].
    pub fn to_database(&self) -> Database {
        self.store.to_database(self.id)
    }
}

impl DbStore {
    /// A read-only view of database `id`.
    #[inline]
    pub fn view(&self, id: DbId) -> DbView<'_> {
        DbView::new(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    fn store_with_chain() -> (DbStore, DbId) {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1, 10]), fact(0, &[2, 20]), fact(1, &[7])]);
        let f = dbs.intern_fact(fact(0, &[1, 30]));
        let g = dbs.intern_fact(fact(2, &[8]));
        let db = dbs.extend(base, &[f, g]);
        (dbs, db)
    }

    #[test]
    fn view_contains_root_and_overlay_facts() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        assert_eq!(v.len(), 5);
        assert!(v.contains(&fact(0, &[2, 20])), "root fact");
        assert!(v.contains(&fact(0, &[1, 30])), "overlay fact");
        assert!(!v.contains(&fact(0, &[9, 9])));
    }

    #[test]
    fn view_tuples_cover_both_layers() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let mut firsts: Vec<u32> = v.tuples(Symbol(0)).map(|t| t[1].0).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![10, 20, 30]);
        assert_eq!(v.tuples(Symbol(9)).count(), 0);
    }

    #[test]
    fn view_matches_agree_with_materialized_database() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let mat = v.to_database();
        let pattern = Atom::new(Symbol(0), vec![Term::Const(Symbol(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut via_view: Vec<u32> = Vec::new();
        v.for_each_match(&pattern, &mut b, |bb| {
            via_view.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(b.get(Var(0)), None, "bindings restored");
        let mut via_db: Vec<u32> = Vec::new();
        mat.for_each_match(&pattern, &mut b, |bb| {
            via_db.push(bb.get(Var(0)).unwrap().0);
            false
        });
        via_view.sort_unstable();
        via_db.sort_unstable();
        assert_eq!(via_view, via_db);
        let rows = v.all_matches(&pattern, &mut b);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn view_indexed_match_covers_root_and_overlay() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        // pred 0, arg 0 bound to 1: one root fact + one overlay fact.
        let pattern = Atom::new(Symbol(0), vec![Term::Const(Symbol(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut counters = MatchCounters::default();
        let mut seen = Vec::new();
        v.for_each_match_counted(&pattern, &mut b, &mut counters, |bb| {
            seen.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(seen, vec![10, 30], "root candidates precede overlay");
        assert_eq!(
            counters,
            MatchCounters {
                probes: 1,
                hits: 1,
                attempts: 2
            }
        );
        // Probe miss across both layers.
        let pattern = Atom::new(Symbol(0), vec![Term::Const(Symbol(5)), Term::Var(Var(0))]);
        let mut counters = MatchCounters::default();
        assert!(!v.for_each_match_counted(&pattern, &mut b, &mut counters, |_| true));
        assert_eq!(
            counters,
            MatchCounters {
                probes: 1,
                hits: 0,
                attempts: 0
            }
        );
        // facts_of_bound on the second argument position.
        let ids: Vec<_> = v.facts_of_bound(Symbol(0), 1, Symbol(30)).collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(dbs.facts().fact(ids[0]).args[1], Symbol(30));
    }

    #[test]
    fn view_subtracts_negative_overlay_on_all_read_paths() {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1, 10]), fact(0, &[2, 20]), fact(0, &[1, 30])]);
        let gone = dbs.intern_fact(fact(0, &[1, 10]));
        let db = dbs.shrink(base, &[gone]);
        let v = dbs.view(db);
        assert_eq!(v.len(), 2);
        assert!(!v.contains(&fact(0, &[1, 10])), "masked fact invisible");
        assert!(v.contains(&fact(0, &[2, 20])));
        // facts_of skips the masked fact.
        assert_eq!(v.facts_of(Symbol(0)).count(), 2);
        // facts_of_bound: the arg index of the flat root still lists the
        // masked fact; the view must filter it.
        let ids: Vec<_> = v.facts_of_bound(Symbol(0), 0, Symbol(1)).collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(dbs.facts().fact(ids[0]).args[1], Symbol(30));
        // Matching agrees with the materialized database.
        let mat = v.to_database();
        let pattern = Atom::new(Symbol(0), vec![Term::Const(Symbol(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut via_view: Vec<u32> = Vec::new();
        v.for_each_match(&pattern, &mut b, |bb| {
            via_view.push(bb.get(Var(0)).unwrap().0);
            false
        });
        let mut via_db: Vec<u32> = Vec::new();
        mat.for_each_match(&pattern, &mut b, |bb| {
            via_db.push(bb.get(Var(0)).unwrap().0);
            false
        });
        via_view.sort_unstable();
        via_db.sort_unstable();
        assert_eq!(via_view, via_db);
        assert_eq!(via_view, vec![30]);
    }

    #[test]
    fn view_early_stop() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let pattern = Atom::new(Symbol(0), vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let mut b = Bindings::new(2);
        let mut n = 0;
        let stopped = v.for_each_match(&pattern, &mut b, |_| {
            n += 1;
            true
        });
        assert!(stopped);
        assert_eq!(n, 1);
    }
}
