//! Read-only views over interned overlay databases.
//!
//! [`DbView`] answers the questions engines ask of a database —
//! membership, per-predicate enumeration, pattern matching — directly
//! against the overlay DAG of [`DbStore`], without materializing a
//! [`Database`]. A view over a chain node reads the shared per-predicate
//! index of its flat root plus its own (bounded) overlay; matching hands
//! premise patterns the store's interned [`GroundAtom`]s by reference, so
//! no per-candidate allocation happens at all.

use crate::atom::{Atom, GroundAtom};
use crate::database::Database;
use crate::factstore::{DbId, DbStore, FactId};
use crate::subst::Bindings;
use crate::symbol::Symbol;
use crate::term::Var;

/// A borrowed, read-only view of one interned database.
#[derive(Clone, Copy)]
pub struct DbView<'a> {
    store: &'a DbStore,
    id: DbId,
}

impl<'a> DbView<'a> {
    /// Creates a view of `id` in `store`.
    pub fn new(store: &'a DbStore, id: DbId) -> Self {
        DbView { store, id }
    }

    /// The id of the viewed database.
    #[inline]
    pub fn id(&self) -> DbId {
        self.id
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.store.entry(self.id).len()
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.store.entry(self.id).is_empty()
    }

    /// Whether fact id `f` is present.
    #[inline]
    pub fn contains_id(&self, f: FactId) -> bool {
        self.store.contains(self.id, f)
    }

    /// Whether `fact` is present.
    pub fn contains(&self, fact: &GroundAtom) -> bool {
        self.store
            .facts()
            .lookup(fact)
            .is_some_and(|f| self.contains_id(f))
    }

    /// Iterates all fact ids in sorted order.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + 'a {
        self.store.iter_fact_ids(self.id)
    }

    /// Iterates the fact ids stored for `pred`: the shared index of the
    /// flat root first, then this node's overlay additions.
    pub fn facts_of(&self, pred: Symbol) -> impl Iterator<Item = FactId> + 'a {
        let store = self.store;
        let entry = store.entry(self.id);
        let rooted = store
            .flat_by_pred(entry.croot())
            .get(&pred)
            .map_or(&[][..], |v| v.as_slice());
        rooted.iter().copied().chain(
            entry
                .overlay()
                .iter()
                .copied()
                .filter(move |&f| store.facts().fact(f).pred == pred),
        )
    }

    /// Iterates the argument tuples stored for `pred`.
    pub fn tuples(&self, pred: Symbol) -> impl Iterator<Item = &'a [Symbol]> {
        let store = self.store;
        self.facts_of(pred)
            .map(move |f| store.facts().fact(f).args.as_slice())
    }

    /// Calls `f` with the undo trail for every fact of `pattern.pred` that
    /// matches `pattern` under `bindings`; `f` returning `true` stops the
    /// scan early (existential check). Bindings are restored between
    /// candidates and after the call.
    ///
    /// Returns `true` if `f` stopped the scan. Mirrors
    /// [`Database::for_each_match`], but matches against the store's
    /// interned facts without allocating per candidate.
    pub fn for_each_match(
        &self,
        pattern: &Atom,
        bindings: &mut Bindings,
        mut f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        let store = self.store;
        for fid in self.facts_of(pattern.pred) {
            let fact = store.facts().fact(fid);
            if let Some(trail) = bindings.match_atom(pattern, fact) {
                let stop = f(bindings);
                bindings.undo(&trail);
                if stop {
                    return true;
                }
            }
        }
        false
    }

    /// Collects all extensions of `bindings` under which `pattern` matches
    /// a stored fact, as vectors of `(var, value)` pairs for the variables
    /// the match bound. Mirrors [`Database::all_matches`].
    pub fn all_matches(&self, pattern: &Atom, bindings: &mut Bindings) -> Vec<Vec<(Var, Symbol)>> {
        let mut out = Vec::new();
        self.for_each_match(pattern, bindings, |b| {
            let row = pattern
                .vars()
                .filter_map(|v| b.get(v).map(|c| (v, c)))
                .collect();
            out.push(row);
            false
        });
        out
    }

    /// Materializes the view as an owned [`Database`].
    pub fn to_database(&self) -> Database {
        self.store.to_database(self.id)
    }
}

impl DbStore {
    /// A read-only view of database `id`.
    #[inline]
    pub fn view(&self, id: DbId) -> DbView<'_> {
        DbView::new(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    fn store_with_chain() -> (DbStore, DbId) {
        let mut dbs = DbStore::new();
        let base = dbs.intern_facts([fact(0, &[1, 10]), fact(0, &[2, 20]), fact(1, &[7])]);
        let f = dbs.intern_fact(fact(0, &[1, 30]));
        let g = dbs.intern_fact(fact(2, &[8]));
        let db = dbs.extend(base, &[f, g]);
        (dbs, db)
    }

    #[test]
    fn view_contains_root_and_overlay_facts() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        assert_eq!(v.len(), 5);
        assert!(v.contains(&fact(0, &[2, 20])), "root fact");
        assert!(v.contains(&fact(0, &[1, 30])), "overlay fact");
        assert!(!v.contains(&fact(0, &[9, 9])));
    }

    #[test]
    fn view_tuples_cover_both_layers() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let mut firsts: Vec<u32> = v.tuples(Symbol(0)).map(|t| t[1].0).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![10, 20, 30]);
        assert_eq!(v.tuples(Symbol(9)).count(), 0);
    }

    #[test]
    fn view_matches_agree_with_materialized_database() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let mat = v.to_database();
        let pattern = Atom::new(Symbol(0), vec![Term::Const(Symbol(1)), Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut via_view: Vec<u32> = Vec::new();
        v.for_each_match(&pattern, &mut b, |bb| {
            via_view.push(bb.get(Var(0)).unwrap().0);
            false
        });
        assert_eq!(b.get(Var(0)), None, "bindings restored");
        let mut via_db: Vec<u32> = Vec::new();
        mat.for_each_match(&pattern, &mut b, |bb| {
            via_db.push(bb.get(Var(0)).unwrap().0);
            false
        });
        via_view.sort_unstable();
        via_db.sort_unstable();
        assert_eq!(via_view, via_db);
        let rows = v.all_matches(&pattern, &mut b);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn view_early_stop() {
        let (dbs, db) = store_with_chain();
        let v = dbs.view(db);
        let pattern = Atom::new(Symbol(0), vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let mut b = Bindings::new(2);
        let mut n = 0;
        let stopped = v.for_each_match(&pattern, &mut b, |_| {
            n += 1;
            true
        });
        assert!(stopped);
        assert_eq!(n, 1);
    }
}
