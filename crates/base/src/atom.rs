//! Atoms: predicate symbols applied to terms, plus their ground instances.

use crate::subst::Bindings;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// A (possibly non-ground) atomic formula `p(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument terms; the arity is `args.len()`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate and arguments.
    pub fn new(pred: Symbol, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The arity of this atom.
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Iterates over the variables occurring in this atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Applies `bindings`, producing a ground atom.
    ///
    /// Returns `None` if any variable is unbound.
    pub fn ground(&self, bindings: &Bindings) -> Option<GroundAtom> {
        let mut args = Vec::with_capacity(self.args.len());
        for &t in &self.args {
            match t {
                Term::Const(c) => args.push(c),
                Term::Var(v) => args.push(bindings.get(v)?),
            }
        }
        Some(GroundAtom {
            pred: self.pred,
            args,
        })
    }

    /// Converts a ground atom view of this atom, if it is ground.
    pub fn to_ground(&self) -> Option<GroundAtom> {
        let mut args = Vec::with_capacity(self.args.len());
        for &t in &self.args {
            args.push(t.as_const()?);
        }
        Some(GroundAtom {
            pred: self.pred,
            args,
        })
    }
}

/// A ground atomic formula `p(c₁, …, cₙ)` — a database fact.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Constant arguments.
    pub args: Vec<Symbol>,
}

impl GroundAtom {
    /// Builds a ground atom.
    pub fn new(pred: Symbol, args: Vec<Symbol>) -> Self {
        GroundAtom { pred, args }
    }

    /// The arity of this fact.
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Lifts this fact back into a (ground) [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&c| Term::Const(c)).collect(),
        }
    }
}

impl fmt::Debug for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}(", self.pred.0)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Symbol {
        Symbol(0)
    }

    #[test]
    fn groundness() {
        let ground = Atom::new(p(), vec![Term::Const(Symbol(1)), Term::Const(Symbol(2))]);
        let open = Atom::new(p(), vec![Term::Var(Var(0)), Term::Const(Symbol(2))]);
        assert!(ground.is_ground());
        assert!(!open.is_ground());
        assert_eq!(
            ground.to_ground(),
            Some(GroundAtom::new(p(), vec![Symbol(1), Symbol(2)]))
        );
        assert_eq!(open.to_ground(), None);
    }

    #[test]
    fn grounding_with_bindings() {
        let open = Atom::new(p(), vec![Term::Var(Var(0)), Term::Const(Symbol(2))]);
        let mut b = Bindings::new(1);
        assert_eq!(open.ground(&b), None);
        b.set(Var(0), Symbol(9));
        assert_eq!(
            open.ground(&b),
            Some(GroundAtom::new(p(), vec![Symbol(9), Symbol(2)]))
        );
    }

    #[test]
    fn vars_iterator() {
        let a = Atom::new(
            p(),
            vec![Term::Var(Var(0)), Term::Const(Symbol(1)), Term::Var(Var(0))],
        );
        let vs: Vec<_> = a.vars().collect();
        assert_eq!(vs, vec![Var(0), Var(0)]);
    }

    #[test]
    fn roundtrip_atom_ground_atom() {
        let g = GroundAtom::new(p(), vec![Symbol(3), Symbol(4)]);
        assert_eq!(g.to_atom().to_ground(), Some(g.clone()));
        assert_eq!(g.arity(), 2);
    }
}
