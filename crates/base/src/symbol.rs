//! String interning for constants and predicate names.
//!
//! The paper's language is function-free: every term is either a variable or
//! a constant symbol, and every atom is a predicate symbol applied to terms.
//! Both kinds of names are interned into dense `u32` ids so that the engines
//! can compare, hash, and index them without touching string data.

use crate::hasher::FxHashMap;
use std::fmt;

/// An interned name (constant symbol or predicate symbol).
///
/// Symbols are only meaningful relative to the [`SymbolTable`] that created
/// them; the table hands out dense ids starting at 0, which the database
/// layer exploits for `Vec`-backed per-predicate indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An append-only intern table mapping names to [`Symbol`]s and back.
///
/// ```
/// use hdl_base::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.intern("edge");
/// assert_eq!(t.intern("edge"), a);
/// assert_eq!(t.name(a), "edge");
/// ```
#[derive(Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: FxHashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned name without allocating.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not created by this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.names.iter().enumerate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("alpha");
        let a2 = t.intern("alpha");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("ghost").is_none());
        let g = t.intern("ghost");
        assert_eq!(t.lookup("ghost"), Some(g));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = (0..10).map(|i| t.intern(&format!("s{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let collected: Vec<_> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(collected, syms);
    }
}
