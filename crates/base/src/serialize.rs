//! Stable binary serialization for the base vocabulary.
//!
//! The durability layer (`hdl-persist`) writes checkpoints and a
//! write-ahead log whose payloads are built from the codecs here: symbols,
//! ground atoms, databases, and the [`DbStore`](crate::DbStore) overlay
//! DAG. The format is deliberately simple — fixed-width little-endian
//! integers, length-prefixed byte strings — so that a torn or corrupted
//! byte stream is detected either by the [`crc32`] frame checksum around
//! it or by a structural decode error; decoding never panics on untrusted
//! input, it returns [`Error::Invalid`].
//!
//! Stability contract: the integer widths and field orders in this module
//! are an on-disk format. Changing them requires bumping the magic/version
//! strings in `hdl-persist` (`HDLWAL01` / `HDLCKPT1`).

use crate::atom::GroundAtom;
use crate::database::Database;
use crate::error::{Error, Result};
use crate::symbol::{Symbol, SymbolTable};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 (IEEE) checksum of `bytes`, as used by the WAL record frames
/// and checkpoint trailers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// An append-only byte-buffer writer for the fixed-width format.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes encoded so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked reader over bytes produced by [`Encoder`].
///
/// Every accessor returns [`Error::Invalid`] instead of panicking when the
/// input is truncated or malformed.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Invalid(format!(
                "truncated record: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Invalid("string payload is not UTF-8".into()))
    }

    /// Reads a u32 and validates it as a collection length against the
    /// bytes actually remaining (each element needs at least
    /// `min_elem_bytes`). Rejects absurd lengths before allocation.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(Error::Invalid(format!(
                "corrupt length prefix: {n} elements cannot fit in {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Encodes the full symbol table in interning order.
///
/// Decoding with [`decode_symbols`] reproduces identical dense ids, so
/// every [`Symbol`]-valued field serialized alongside stays meaningful.
pub fn encode_symbols(enc: &mut Encoder, table: &SymbolTable) {
    enc.u32(table.len() as u32);
    for (_, name) in table.iter() {
        enc.str(name);
    }
}

/// Decodes a symbol table written by [`encode_symbols`].
pub fn decode_symbols(dec: &mut Decoder<'_>) -> Result<SymbolTable> {
    let n = dec.len_prefix(4)?;
    let mut table = SymbolTable::new();
    for i in 0..n {
        let name = dec.str()?;
        let sym = table.intern(&name);
        if sym.index() != i {
            return Err(Error::Invalid(format!(
                "duplicate symbol `{name}` in symbol table at position {i}"
            )));
        }
    }
    Ok(table)
}

/// Encodes one ground atom as `pred, arity, args…`.
pub fn encode_ground_atom(enc: &mut Encoder, fact: &GroundAtom) {
    enc.u32(fact.pred.0);
    enc.u32(fact.args.len() as u32);
    for a in &fact.args {
        enc.u32(a.0);
    }
}

/// Decodes a ground atom written by [`encode_ground_atom`], validating
/// every symbol id against `symbols`.
pub fn decode_ground_atom(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<GroundAtom> {
    let pred = decode_symbol(dec, symbols)?;
    let arity = dec.len_prefix(4)?;
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(decode_symbol(dec, symbols)?);
    }
    Ok(GroundAtom::new(pred, args))
}

/// Decodes one symbol id, validating it against `symbols`.
pub fn decode_symbol(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Symbol> {
    let id = dec.u32()?;
    if id as usize >= symbols.len() {
        return Err(Error::Invalid(format!(
            "symbol id {id} out of range (table has {})",
            symbols.len()
        )));
    }
    Ok(Symbol(id))
}

/// Encodes a database as a fact list (deterministic iteration order).
pub fn encode_database(enc: &mut Encoder, db: &Database) {
    enc.u32(db.len() as u32);
    let mut facts: Vec<GroundAtom> = db.iter_facts().collect();
    // Database iteration is only run-deterministic; sort for a canonical
    // byte encoding so equal databases encode identically.
    facts.sort();
    for f in &facts {
        encode_ground_atom(enc, f);
    }
}

/// Decodes a database written by [`encode_database`].
pub fn decode_database(dec: &mut Decoder<'_>, symbols: &SymbolTable) -> Result<Database> {
    let n = dec.len_prefix(8)?;
    let mut db = Database::new();
    for _ in 0..n {
        db.insert(decode_ground_atom(dec, symbols)?);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.str("héllo");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.str().unwrap(), "héllo");
        assert!(dec.is_done());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut enc = Encoder::new();
        enc.u64(42);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(dec.u64().is_err());
        // A giant length prefix must be rejected before allocating.
        let mut enc = Encoder::new();
        enc.u32(u32::MAX);
        let bytes = enc.finish();
        assert!(Decoder::new(&bytes).len_prefix(4).is_err());
        assert!(Decoder::new(&bytes).str().is_err());
    }

    #[test]
    fn symbols_roundtrip_with_identical_ids() {
        let mut t = SymbolTable::new();
        for name in ["edge", "tc", "a", "b", "グラフ"] {
            t.intern(name);
        }
        let mut enc = Encoder::new();
        encode_symbols(&mut enc, &t);
        let bytes = enc.finish();
        let back = decode_symbols(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.len(), t.len());
        for (sym, name) in t.iter() {
            assert_eq!(back.lookup(name), Some(sym));
        }
    }

    #[test]
    fn ground_atom_rejects_out_of_range_symbols() {
        let mut t = SymbolTable::new();
        t.intern("p");
        let fact = GroundAtom::new(Symbol(0), vec![Symbol(9)]);
        let mut enc = Encoder::new();
        encode_ground_atom(&mut enc, &fact);
        let bytes = enc.finish();
        assert!(decode_ground_atom(&mut Decoder::new(&bytes), &t).is_err());
    }

    #[test]
    fn database_roundtrip_is_canonical() {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let (a, b) = (t.intern("a"), t.intern("b"));
        let mut db1 = Database::new();
        db1.insert(GroundAtom::new(p, vec![a, b]));
        db1.insert(GroundAtom::new(p, vec![b, a]));
        let mut db2 = Database::new();
        db2.insert(GroundAtom::new(p, vec![b, a]));
        db2.insert(GroundAtom::new(p, vec![a, b]));
        let encode = |db: &Database| {
            let mut e = Encoder::new();
            encode_database(&mut e, db);
            e.finish()
        };
        assert_eq!(encode(&db1), encode(&db2), "canonical byte encoding");
        let bytes = encode(&db1);
        let back = decode_database(&mut Decoder::new(&bytes), &t).unwrap();
        assert_eq!(back, db1);
    }
}
