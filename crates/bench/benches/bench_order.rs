//! E8 (§6.2): the expressibility pipeline — asserting linear orders
//! hypothetically and running a machine over the database bitmap.
//! Expected shape: factorially many orders exist, but the engine accepts
//! on the first successful one; the all-orders cost appears in rejecting
//! instances. Bitmap construction itself is linear in the tape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_base::{Database, GroundAtom, Symbol, SymbolTable};
use hdl_core::engine::TopDownEngine;
use hdl_encodings::bitmap::{bitmap_tape, BitmapSchema};
use hdl_encodings::lemma2::unary_query_rulebase;
use hdl_turing::{library, Cascade};

fn bench_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("order");
    configure(&mut group);

    let cascade = Cascade::new(vec![library::bitmap_nonempty()]).unwrap();
    for n in [2usize, 3] {
        for (label, members) in [("accepting", vec![0usize]), ("rejecting", vec![])] {
            let enc = unary_query_rulebase(&cascade, 2, false).unwrap();
            let mut syms = enc.symbols.clone();
            let consts: Vec<Symbol> = (0..n).map(|i| syms.intern(&format!("a{i}"))).collect();
            let mut db = Database::new();
            for &cst in &consts {
                db.insert(GroundAtom::new(enc.domain, vec![cst]));
            }
            for &i in &members {
                db.insert(GroundAtom::new(enc.p, vec![consts[i]]));
            }
            let expected = !members.is_empty();
            group.bench_with_input(
                BenchmarkId::new(format!("lemma2_nonempty/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut eng = TopDownEngine::new(&enc.rulebase, &db).unwrap();
                        assert_eq!(eng.holds(&enc.yes_query()).unwrap(), expected);
                    });
                },
            );
        }
    }

    // Bitmap encoding sweep over all orders (pure function).
    let mut syms = SymbolTable::new();
    let p = syms.intern("p");
    let q = syms.intern("q");
    let consts: Vec<Symbol> = (0..6).map(|i| syms.intern(&format!("c{i}"))).collect();
    let mut db = Database::new();
    db.insert(GroundAtom::new(p, vec![consts[1], consts[4]]));
    db.insert(GroundAtom::new(q, vec![consts[2]]));
    let schema = BitmapSchema {
        relations: vec![(p, 2), (q, 1)],
    };
    group.bench_function("bitmap_tape/n6", |b| {
        b.iter(|| bitmap_tape(&db, &schema, &consts));
    });
    group.finish();
}

criterion_group!(benches, bench_order);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
