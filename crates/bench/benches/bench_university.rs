//! E1 (Examples 1–3): the university rulebase's hypothetical queries —
//! the "interactive workload" sanity benchmark: all engines should answer
//! in microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use hdl_base::{Database, SymbolTable};
use hdl_core::engine::{BottomUpEngine, TopDownEngine};
use hdl_core::parser::{parse_program, parse_query, split_facts};

const SRC: &str = "
    take(tony, cs250). take(tony, his101).
    take(alice, his101). take(alice, eng201).
    take(bob, cs452).
    grad(S) :- take(S, his101), take(S, eng201).
";

fn bench_university(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    let program = parse_program(SRC, &mut syms).unwrap();
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();
    let q_hyp = parse_query("?- grad(tony)[add: take(tony, eng201)].", &mut syms).unwrap();
    let q_exists = parse_query("?- grad(bob)[add: take(bob, C)].", &mut syms).unwrap();

    let mut group = c.benchmark_group("university");
    configure(&mut group);
    group.bench_function("hypothetical_query/topdown", |b| {
        b.iter(|| {
            let mut eng = TopDownEngine::new(&rules, &db).unwrap();
            assert!(eng.holds(&q_hyp).unwrap());
        });
    });
    group.bench_function("exists_course_query/topdown", |b| {
        b.iter(|| {
            let mut eng = TopDownEngine::new(&rules, &db).unwrap();
            assert!(!eng.holds(&q_exists).unwrap());
        });
    });
    group.bench_function("hypothetical_query/bottomup", |b| {
        b.iter(|| {
            let mut eng = BottomUpEngine::new(&rules, &db).unwrap();
            assert!(eng.holds(&q_hyp).unwrap());
        });
    });
    group.bench_function("parse_program", |b| {
        b.iter(|| {
            let mut syms = SymbolTable::new();
            parse_program(SRC, &mut syms).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_university);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
