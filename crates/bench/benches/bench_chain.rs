//! E2 (Examples 4–5): chains of hypothetical insertions of length n.
//! Expected shape: near-linear in n (one augmented database per link,
//! each conjunct checked by membership).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_bench::workloads::chain_program;
use hdl_core::engine::TopDownEngine;
use hdl_core::parser::parse_query;

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain");
    configure(&mut group);
    for n in [4usize, 16, 64, 128] {
        let (rules, db, mut syms) = chain_program(n);
        let query = parse_query("?- a1.", &mut syms).unwrap();
        group.bench_with_input(BenchmarkId::new("topdown", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = TopDownEngine::new(&rules, &db).unwrap();
                assert!(eng.holds(&query).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
