//! E6 (§5.1 / Theorem 1): running encoded oracle machines through logical
//! inference vs simulating them directly. Expected shape: the encoding
//! pays a large constant factor (every machine step is a hypothetical
//! insertion plus frame-axiom reasoning), growing with the time bound;
//! verdicts always agree (asserted in the loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_core::engine::TopDownEngine;
use hdl_encodings::tm::encode;
use hdl_turing::{library, Cascade, Sym};

fn bench_tm(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm_encoding");
    configure(&mut group);

    // One NP machine, growing time bound.
    let cascade = Cascade::new(vec![library::contains_one()]).unwrap();
    for bound in [4usize, 6, 8] {
        let mut input = vec![Sym(0); bound - 2];
        input[bound - 3] = Sym(1);
        let direct = cascade.accepts(&input, bound);
        let enc = encode(&cascade, &input, bound).unwrap();
        group.bench_with_input(
            BenchmarkId::new("encoded/contains_one", bound),
            &bound,
            |b, _| {
                b.iter(|| {
                    let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
                    assert_eq!(eng.holds(&enc.accept_query()).unwrap(), direct);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("simulator/contains_one", bound),
            &bound,
            |b, _| {
                b.iter(|| assert_eq!(cascade.accepts(&input, bound), direct));
            },
        );
    }

    // A Σ₂ᴾ cascade exercising the ~ORACLE stratum boundary.
    let top = library::write_then_ask(Sym(0), false);
    let cascade2 = Cascade::new(vec![top, library::contains_one()]).unwrap();
    let enc2 = encode(&cascade2, &[], 8).unwrap();
    let direct2 = cascade2.accepts(&[], 8);
    group.bench_function("encoded/sigma2_no_oracle", |b| {
        b.iter(|| {
            let mut eng = TopDownEngine::new(&enc2.rulebase, &enc2.database).unwrap();
            assert_eq!(eng.holds(&enc2.accept_query()).unwrap(), direct2);
        });
    });
    group.bench_function("encode_only/sigma2", |b| {
        b.iter(|| encode(&cascade2, &[], 8).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_tm);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
