//! E5 (Lemma 1): deciding linear stratifiability and constructing the
//! stratification, vs rulebase size (k strata × w families). Expected
//! shape: low-polynomial in the number of rules; the relaxation's
//! iteration count stays far below the O(m²) bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_bench::workloads::layered_rulebase;
use hdl_core::analysis::stratify::linear_stratification;

fn bench_stratify(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratify");
    configure(&mut group);
    for (k, w) in [(2usize, 2usize), (4, 4), (8, 8), (16, 8), (16, 16)] {
        let (rb, _) = layered_rulebase(k, w);
        let rules = rb.len();
        group.bench_with_input(
            BenchmarkId::new("linear_stratification", format!("k{k}_w{w}_rules{rules}")),
            &rb,
            |b, rb| {
                b.iter(|| {
                    let ls = linear_stratification(rb).unwrap();
                    assert_eq!(ls.num_strata(), k);
                    ls
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stratify);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
