//! E3 (Example 6): parity of a relation vs relation size, on all three
//! engines. The cost grows with the number of copy steps (one augmented
//! database per copied tuple) — linear in databases, polynomial overall.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_bench::workloads::parity_program;
use hdl_core::engine::{BottomUpEngine, ProveEngine, TopDownEngine};
use hdl_core::parser::parse_query;

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity");
    configure(&mut group);
    for n in [2usize, 4, 6, 8] {
        let (rules, db, mut syms) = parity_program(n);
        let query = parse_query("?- even.", &mut syms).unwrap();
        group.bench_with_input(BenchmarkId::new("topdown", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = TopDownEngine::new(&rules, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), n % 2 == 0);
            });
        });
        group.bench_with_input(BenchmarkId::new("bottomup", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = BottomUpEngine::new(&rules, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), n % 2 == 0);
            });
        });
        group.bench_with_input(BenchmarkId::new("prove", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = ProveEngine::new(&rules, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), n % 2 == 0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parity);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
