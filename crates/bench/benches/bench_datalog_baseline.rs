//! E10: the plain-Datalog baseline vs the hypothetical engines on queries
//! both express (transitive closure over chains), plus the naive vs
//! semi-naive ablation. Expected shape: semi-naive beats naive as chains
//! grow; the hypothetical engines pay interpretation overhead but stay
//! polynomial (hypothetical machinery is never triggered by Horn rules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_base::SymbolTable;
use hdl_bench::workloads::{tc_edb, tc_rules};
use hdl_core::engine::{BottomUpEngine, TopDownEngine};
use hdl_core::parser::parse_program;

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_baseline");
    configure(&mut group);
    for n in [8usize, 16, 32] {
        let mut syms = SymbolTable::new();
        let rules = tc_rules(&mut syms);
        let db = tc_edb(&mut syms, n);
        let tc = syms.lookup("tc").unwrap();
        let expected_pairs = n * (n - 1) / 2;

        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let m = hdl_datalog::naive::evaluate(&rules, &db).unwrap();
                assert_eq!(m.count(tc), expected_pairs);
            });
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                let m = hdl_datalog::seminaive::evaluate(&rules, &db).unwrap();
                assert_eq!(m.count(tc), expected_pairs);
            });
        });

        let hyp_rules = parse_program(
            "tc(X, Y) :- e(X, Y).
             tc(X, Z) :- e(X, Y), tc(Y, Z).",
            &mut syms,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("hyp_bottomup", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = BottomUpEngine::new(&hyp_rules, &db).unwrap();
                let m = eng.model().unwrap();
                assert_eq!(m.count(tc), expected_pairs);
            });
        });
        // Magic sets: the same point query, goal-directed bottom-up.
        let v0m = syms.intern("v0");
        group.bench_with_input(BenchmarkId::new("magic_point", n), &n, |b, _| {
            b.iter(|| {
                let mut syms2 = syms.clone();
                let pq = hdl_datalog::magic::PointQuery {
                    pred: tc,
                    args: vec![Some(v0m), None],
                };
                let ans = hdl_datalog::magic::magic_query(&rules, &db, &pq, &mut syms2).unwrap();
                assert_eq!(ans.len(), n - 1);
            });
        });

        // Top-down: answer one reachability query (goal-directed).
        let v0 = syms.intern("v0");
        let vlast = syms.intern(&format!("v{}", n - 1));
        let goal = hdl_core::ast::Premise::Atom(hdl_base::Atom::new(
            tc,
            vec![hdl_base::Term::Const(v0), hdl_base::Term::Const(vlast)],
        ));
        group.bench_with_input(BenchmarkId::new("hyp_topdown_point", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = TopDownEngine::new(&hyp_rules, &db).unwrap();
                assert!(eng.holds(&goal).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
