//! E11 (extension): QBF via hypothetical inference vs direct evaluation.
//! SAT instances exercise the k = 1 (NP) regime; 2-block formulas the
//! Σ₂ᴾ regime. Expected shape: the rulebase pays the interpretation
//! constant; both sides are exponential in variables (inherent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_core::engine::TopDownEngine;
use hdl_encodings::qbf::build::{n, p};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random k-CNF over `vars` variables with `clauses` clauses.
fn random_cnf(vars: usize, clauses: usize, seed: u64) -> Vec<Vec<hdl_encodings::qbf::Lit>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let v = rng.gen_range(0..vars);
                    if rng.gen_bool(0.5) {
                        p(v)
                    } else {
                        n(v)
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_qbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("qbf");
    configure(&mut group);

    for vars in [3usize, 4, 5] {
        let qbf = Qbf {
            prefix: vec![(Quant::Exists, (0..vars).collect())],
            clauses: random_cnf(vars, vars + 1, 7),
        };
        let expected = qbf.eval();
        let enc = encode_qbf(&qbf).unwrap();
        group.bench_with_input(BenchmarkId::new("sat/rulebase", vars), &vars, |b, _| {
            b.iter(|| {
                let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
                assert_eq!(eng.holds(&enc.sat_query()).unwrap(), expected);
            });
        });
        group.bench_with_input(BenchmarkId::new("sat/direct", vars), &vars, |b, _| {
            b.iter(|| assert_eq!(qbf.eval(), expected));
        });
    }

    // 2-block (Σ₂ᴾ) instances: ∃ half the vars, ∀ the rest.
    for vars in [3usize, 4] {
        let split = vars / 2 + 1;
        let qbf = Qbf {
            prefix: vec![
                (Quant::Exists, (0..split).collect()),
                (Quant::Forall, (split..vars).collect()),
            ],
            clauses: random_cnf(vars, vars, 11),
        };
        let expected = qbf.eval();
        let enc = encode_qbf(&qbf).unwrap();
        group.bench_with_input(
            BenchmarkId::new("exists_forall/rulebase", vars),
            &vars,
            |b, _| {
                b.iter(|| {
                    let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
                    assert_eq!(eng.holds(&enc.sat_query()).unwrap(), expected);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qbf);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
