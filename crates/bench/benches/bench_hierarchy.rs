//! E9 (Theorem 1 shape): evaluation cost as the number of strata grows.
//! Each stratum alternates hypothetical search with negation; on the
//! synthetic layered workload the per-stratum work is small, so the cost
//! climbs roughly linearly here — the *worst case* climbs the polynomial
//! hierarchy, which E4/E6 exhibit via their exponential searches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_base::Database;
use hdl_bench::workloads::layered_rulebase;
use hdl_core::engine::{ProveEngine, TopDownEngine};
use hdl_core::parser::parse_query;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    configure(&mut group);
    for k in [1usize, 2, 4, 8] {
        let (rb, mut syms) = layered_rulebase(k, 2);
        // The d_i_j facts make every negation ladder live: a_1 holds,
        // a_2 = ~a_1 fails, a_3 = ~a_2 holds, … alternating.
        let mut db = Database::new();
        for i in 1..=k {
            for j in 0..2 {
                let d = syms.intern(&format!("d_{i}_{j}"));
                db.insert(hdl_base::GroundAtom::new(d, vec![]));
            }
        }
        let query = parse_query(&format!("?- a_{k}_0."), &mut syms).unwrap();
        let expected = k % 2 == 1; // a1 true, a2 = ~a1 false, alternating
        group.bench_with_input(BenchmarkId::new("topdown", k), &k, |b, _| {
            b.iter(|| {
                let mut eng = TopDownEngine::new(&rb, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), expected);
            });
        });
        group.bench_with_input(BenchmarkId::new("prove", k), &k, |b, _| {
            b.iter(|| {
                let mut eng = ProveEngine::new(&rb, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), expected);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
