//! E4 (Examples 7–8): Hamiltonian path via hypothetical search vs a
//! direct DFS baseline, over graph size and density.
//!
//! Expected shape: both are exponential in the worst case (the problem is
//! NP-complete); the rulebase pays a constant-factor interpretation
//! overhead over the native DFS, growing with n. The *verdicts* always
//! agree — asserted inside the measurement loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_bench::workloads::{hamiltonian_program, random_digraph, Digraph};
use hdl_core::engine::TopDownEngine;
use hdl_core::parser::parse_query;

fn bench_hamiltonian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian");
    configure(&mut group);
    for n in [3usize, 4, 5, 6] {
        for (label, graph) in [
            ("chain", Digraph::chain(n)),
            ("star", Digraph::star(n)),
            ("random_d04", random_digraph(n, 0.4, 42)),
        ] {
            let expected = graph.has_hamiltonian_path();
            let (rules, db, mut syms) = hamiltonian_program(&graph);
            let query = parse_query("?- yes.", &mut syms).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("rulebase/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut eng = TopDownEngine::new(&rules, &db).unwrap();
                        assert_eq!(eng.holds(&query).unwrap(), expected);
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("direct_dfs/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        assert_eq!(graph.has_hamiltonian_path(), expected);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hamiltonian);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
