//! E7 (§5.2 / Theorem 3): the PROVE procedures — runtime vs instance
//! size, with the Σ goal-expansion counts asserted against the
//! `O(n^{2kᵢk₀})` budget inside the measurement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdl_bench::workloads::{hamiltonian_program, parity_program, Digraph};
use hdl_core::engine::ProveEngine;
use hdl_core::parser::parse_query;

fn bench_prove(c: &mut Criterion) {
    let mut group = c.benchmark_group("prove");
    configure(&mut group);

    for n in [2usize, 4, 6, 8] {
        let (rules, db, mut syms) = parity_program(n);
        let query = parse_query("?- even.", &mut syms).unwrap();
        group.bench_with_input(BenchmarkId::new("parity", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = ProveEngine::new(&rules, &db).unwrap();
                assert_eq!(eng.holds(&query).unwrap(), n % 2 == 0);
                // Theorem 3: k₁ = 1 class, k₀ = 1 → O(n²) distinct goals.
                let expansions = eng.stats().sigma_expansions[0];
                assert!(expansions <= 4 * (n as u64 + 1).pow(2));
            });
        });
    }

    for n in [3usize, 4, 5] {
        let (rules, db, mut syms) = hamiltonian_program(&Digraph::chain(n));
        let query = parse_query("?- yes.", &mut syms).unwrap();
        group.bench_with_input(BenchmarkId::new("hamiltonian_chain", n), &n, |b, _| {
            b.iter(|| {
                let mut eng = ProveEngine::new(&rules, &db).unwrap();
                assert!(eng.holds(&query).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prove);
criterion_main!(benches);

/// Conservative Criterion settings: the harness favours total suite time
/// over tight confidence intervals — the experiments compare shapes, not
/// single-digit-percent deltas.
fn configure<M: criterion::measurement::Measurement>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
}
