//! `fixpoint` — the tracked fixpoint benchmark behind `BENCH_fixpoint.json`.
//!
//! Runs each workload under up to four engine configurations —
//!
//! - `naive`: the retained [`NaiveEngine`] reference (full re-fire of
//!   every rule, every round),
//! - `semi_naive_w1`: the semi-naive delta-rotating closure, single
//!   threaded,
//! - `semi_naive_w4`: the same closure with intra-round parallel rule
//!   firing on 4 workers,
//! - `magic`: the demand rewrite ([`MagicEngine`]) in front of a fresh
//!   semi-naive run — only on the `*_point` workloads, where the query
//!   has bound arguments for the rewrite to exploit,
//!
//! — checks that all configurations agree on the answer, and emits wall
//! time, rounds, premise-match attempts, index probe/hit counts, and
//! the per-round delta trajectory as JSON. The attempts counters are
//! deterministic, so the naive/semi and semi/magic ratios are stable
//! regression gates; wall time is machine-dependent and only
//! sanity-gated.
//!
//! ```console
//! $ cargo run --release -p hdl-bench --bin fixpoint            # full sizes
//! $ cargo run --release -p hdl-bench --bin fixpoint -- --quick # CI sizes
//! $ cargo run --release -p hdl-bench --bin fixpoint -- --check # quick + gates
//! ```
//!
//! `--check` exits non-zero if semi-naive is slower than naive on a
//! transitive-closure workload, the naive/semi attempts ratio falls
//! below 3×, fewer than two point-query workloads show a ≥ 10× semi/
//! magic attempts ratio, or a workload whose deltas all fell below the
//! spawn threshold still shows a parallel speedup under 0.95× (the
//! spawn gate must make skipped parallelism free).

use hdl_base::Database;
use hdl_bench::workloads::{
    hamiltonian_reach_program, random_digraph, same_generation_program, tc_program, Digraph,
};
use hdl_core::ast::{Premise, Rulebase};
use hdl_core::engine::{BottomUpEngine, MagicEngine, NaiveEngine};
use hdl_core::parser::parse_query;
use std::fmt::Write as _;
use std::time::Instant;

/// Worker count for the parallel configuration.
const PAR_WORKERS: usize = 4;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Naive,
    Semi { workers: usize },
    Magic,
}

impl Config {
    fn label(self) -> String {
        match self {
            Config::Naive => "naive".into(),
            Config::Semi { workers } => format!("semi_naive_w{workers}"),
            Config::Magic => "magic".into(),
        }
    }
}

/// Every workload runs the naive reference and both semi-naive widths.
const MODEL_CONFIGS: [Config; 3] = [
    Config::Naive,
    Config::Semi { workers: 1 },
    Config::Semi {
        workers: PAR_WORKERS,
    },
];

/// Point-query workloads additionally run the demand rewrite.
const POINT_CONFIGS: [Config; 4] = [
    Config::Naive,
    Config::Semi { workers: 1 },
    Config::Semi {
        workers: PAR_WORKERS,
    },
    Config::Magic,
];

/// What the workload asks of the engine.
enum Task {
    /// Compute the full perfect model of the base database.
    Model,
    /// Evaluate one ground query (hypothetical / negation workloads).
    Holds(Premise),
}

/// Deterministic work counters plus the best wall time over repeats.
struct RunMetrics {
    wall_ms: f64,
    attempts: u64,
    rounds: u64,
    index_probes: u64,
    index_hits: u64,
    parallel_rounds: u64,
    magic_rules: u64,
    demand_facts: u64,
    delta: Vec<u64>,
}

impl RunMetrics {
    fn from_stats(wall_ms: f64, s: &hdl_core::engine::EngineStats) -> Self {
        RunMetrics {
            wall_ms,
            attempts: s.goal_expansions,
            rounds: s.rounds,
            index_probes: s.index_probes,
            index_hits: s.index_hits,
            parallel_rounds: s.parallel_rounds,
            magic_rules: s.magic_rules,
            demand_facts: s.demand_facts,
            delta: s.delta_facts_per_round.clone(),
        }
    }
}

/// The answer a run produced, for cross-configuration equivalence.
#[derive(PartialEq)]
enum Answer {
    Model(Database),
    Verdict(bool),
}

impl Answer {
    fn describe(&self) -> String {
        match self {
            Answer::Model(m) => format!("{} facts", m.len()),
            Answer::Verdict(v) => format!("verdict {v}"),
        }
    }
}

fn run_once(
    rb: &Rulebase,
    db: &Database,
    task: &Task,
    config: Config,
) -> (f64, RunMetrics, Answer) {
    let start = Instant::now();
    let mut eng;
    let answer = match config {
        Config::Naive => {
            let mut naive = NaiveEngine::new(rb, db).expect("workload stratifies");
            let answer = match task {
                Task::Model => Answer::Model(naive.model().expect("naive model")),
                Task::Holds(q) => Answer::Verdict(naive.holds(q).expect("naive holds")),
            };
            let wall = start.elapsed().as_secs_f64() * 1e3;
            return (wall, RunMetrics::from_stats(wall, naive.stats()), answer);
        }
        Config::Magic => {
            let mut magic = MagicEngine::new(rb, db).expect("workload stratifies");
            let answer = match task {
                Task::Model => unreachable!("magic runs only on point-query workloads"),
                Task::Holds(q) => Answer::Verdict(magic.holds(q).expect("magic holds")),
            };
            let wall = start.elapsed().as_secs_f64() * 1e3;
            return (wall, RunMetrics::from_stats(wall, magic.stats()), answer);
        }
        Config::Semi { workers } => {
            eng = BottomUpEngine::new(rb, db)
                .expect("workload stratifies")
                .with_parallelism(workers);
            match task {
                Task::Model => Answer::Model(eng.model().expect("semi-naive model")),
                Task::Holds(q) => Answer::Verdict(eng.holds(q).expect("semi-naive holds")),
            }
        }
    };
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (wall, RunMetrics::from_stats(wall, eng.stats()), answer)
}

struct WorkloadResult {
    name: &'static str,
    params: String,
    answer: String,
    runs: Vec<(String, RunMetrics)>,
}

impl WorkloadResult {
    fn metrics(&self, label: &str) -> &RunMetrics {
        &self
            .runs
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no config {label}"))
            .1
    }

    fn attempts_ratio(&self) -> f64 {
        ratio(
            self.metrics("naive").attempts as f64,
            self.metrics("semi_naive_w1").attempts as f64,
        )
    }

    fn wall_ratio_naive_over_semi(&self) -> f64 {
        ratio(
            self.metrics("naive").wall_ms,
            self.metrics("semi_naive_w1").wall_ms,
        )
    }

    fn parallel_speedup(&self) -> f64 {
        ratio(
            self.metrics("semi_naive_w1").wall_ms,
            self.metrics(&format!("semi_naive_w{PAR_WORKERS}")).wall_ms,
        )
    }

    /// Semi-naive over magic attempts — how much work the demand
    /// rewrite saved. `None` on workloads that did not run `magic`.
    fn magic_attempts_ratio(&self) -> Option<f64> {
        let magic = self.runs.iter().find(|(l, _)| l == "magic")?;
        Some(ratio(
            self.metrics("semi_naive_w1").attempts as f64,
            magic.1.attempts as f64,
        ))
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

fn run_workload(
    name: &'static str,
    params: String,
    rb: &Rulebase,
    db: &Database,
    task: &Task,
    configs: &[Config],
    repeats: usize,
) -> WorkloadResult {
    let mut runs: Vec<(String, RunMetrics)> = Vec::new();
    let mut reference: Option<Answer> = None;
    for &config in configs {
        let (_, metrics, answer) = run_once(rb, db, task, config);
        match &reference {
            None => reference = Some(answer),
            Some(expected) => assert!(
                *expected == answer,
                "{name}: {} disagrees with naive reference",
                config.label()
            ),
        }
        runs.push((config.label(), metrics));
    }
    // Wall time is the minimum over `repeats` runs; counters are
    // deterministic across repeats. Repeats are interleaved across
    // configurations so a scheduler hiccup lands on all of them
    // rather than skewing one configuration's burst.
    for _ in 1..repeats {
        for (i, &config) in configs.iter().enumerate() {
            let (wall, _, _) = run_once(rb, db, task, config);
            runs[i].1.wall_ms = runs[i].1.wall_ms.min(wall);
        }
    }
    for (label, metrics) in &runs {
        eprintln!(
            "  {name:<16} {label:<14} {:>9.2} ms  {:>12} attempts  {:>6} rounds  {:>12} probes",
            metrics.wall_ms, metrics.attempts, metrics.rounds, metrics.index_probes,
        );
    }
    WorkloadResult {
        name,
        params,
        answer: reference.expect("at least one config ran").describe(),
        runs,
    }
}

/// Minimal JSON emitter — the workspace is offline, so no serde.
fn json(results: &[WorkloadResult], mode: &str, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench_fixpoint/v2\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p hdl-bench --bin fixpoint\","
    );
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"host_threads\": {threads},");
    let _ = writeln!(out, "  \"parallel_workers\": {PAR_WORKERS},");
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"params\": \"{}\",", w.params);
        let _ = writeln!(out, "      \"answer\": \"{}\",", w.answer);
        let _ = writeln!(
            out,
            "      \"attempts_ratio_naive_over_semi\": {:.2},",
            w.attempts_ratio()
        );
        let _ = writeln!(
            out,
            "      \"wall_ratio_naive_over_semi\": {:.2},",
            w.wall_ratio_naive_over_semi()
        );
        let _ = writeln!(
            out,
            "      \"parallel_speedup_w1_over_w{PAR_WORKERS}\": {:.2},",
            w.parallel_speedup()
        );
        if let Some(r) = w.magic_attempts_ratio() {
            let _ = writeln!(out, "      \"attempts_ratio_semi_over_magic\": {r:.2},");
        }
        out.push_str("      \"configs\": [\n");
        for (ci, (label, m)) in w.runs.iter().enumerate() {
            out.push_str("        {");
            let _ = write!(
                out,
                "\"config\": \"{label}\", \"wall_ms\": {:.3}, \"attempts\": {}, \
                 \"rounds\": {}, \"index_probes\": {}, \"index_hits\": {}, \
                 \"parallel_rounds\": {}, \"magic_rules\": {}, \"demand_facts\": {}, ",
                m.wall_ms,
                m.attempts,
                m.rounds,
                m.index_probes,
                m.index_hits,
                m.parallel_rounds,
                m.magic_rules,
                m.demand_facts
            );
            // The delta trajectory of the last model computed; long
            // tails (chains) are truncated for readability.
            const DELTA_CAP: usize = 32;
            let shown: Vec<String> = m.delta.iter().take(DELTA_CAP).map(u64::to_string).collect();
            let _ = write!(
                out,
                "\"delta_rounds\": {}, \"delta_facts_per_round\": [{}{}]",
                m.delta.len(),
                shown.join(", "),
                if m.delta.len() > DELTA_CAP {
                    ", -1"
                } else {
                    ""
                }
            );
            out.push_str(if ci + 1 < w.runs.len() { "},\n" } else { "}\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if wi + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = check || args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_fixpoint.json".into());
    // Quick mode gates wall-clock ratios in CI, so it takes more
    // repeats: the min over five runs is stable against scheduler
    // noise that a min over two is not.
    let repeats = if quick { 5 } else { 3 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "fixpoint benchmark — mode {}, {} host threads",
        if quick { "quick" } else { "full" },
        threads
    );

    let mut results = Vec::new();

    // Chain TC: many rounds with shrinking deltas — the workload where
    // naive re-derivation is most wasteful (the attempts-ratio gate).
    let n = if quick { 64 } else { 192 };
    let (rb, db, mut syms) = tc_program(&Digraph::chain(n));
    results.push(run_workload(
        "tc_chain",
        format!("chain of {n} nodes"),
        &rb,
        &db,
        &Task::Model,
        &MODEL_CONFIGS,
        repeats,
    ));

    // Point reachability on the same chain: both query arguments bound,
    // so the demand rewrite only derives the O(n) suffix reachable from
    // the source instead of the O(n²) full closure.
    let q = parse_query(&format!("?- tc(v0, v{}).", n - 1), &mut syms).expect("query parses");
    results.push(run_workload(
        "tc_chain_point",
        format!("chain of {n} nodes, query tc(v0, v{})", n - 1),
        &rb,
        &db,
        &Task::Holds(q),
        &POINT_CONFIGS,
        repeats,
    ));

    // Dense random TC: few rounds with wide deltas — the workload where
    // intra-round parallel firing pays (the wall-clock gate).
    let (n, d) = if quick { (64, 0.10) } else { (200, 0.035) };
    let g = random_digraph(n, d, 7);
    let (rb, db, mut syms) = tc_program(&g);
    results.push(run_workload(
        "tc_dense",
        format!(
            "random digraph n={n} density={d} seed=7 ({} edges)",
            g.edges.len()
        ),
        &rb,
        &db,
        &Task::Model,
        &MODEL_CONFIGS,
        repeats,
    ));

    // Point reachability on the dense digraph: demand restricts the
    // closure to the single-source slice instead of all pairs.
    let q = parse_query(&format!("?- tc(v0, v{}).", n - 1), &mut syms).expect("query parses");
    results.push(run_workload(
        "tc_dense_point",
        format!(
            "random digraph n={n} density={d} seed=7, query tc(v0, v{})",
            n - 1
        ),
        &rb,
        &db,
        &Task::Holds(q),
        &POINT_CONFIGS,
        repeats,
    ));

    // Same-generation over a complete binary tree: non-linear recursion
    // with geometrically widening deltas.
    let depth = if quick { 6 } else { 9 };
    let (rb, db, mut syms) = same_generation_program(depth);
    results.push(run_workload(
        "same_generation",
        format!("complete binary tree, depth {depth}"),
        &rb,
        &db,
        &Task::Model,
        &MODEL_CONFIGS,
        repeats,
    ));

    // Point same-generation between the leftmost and rightmost leaves:
    // demand walks only the two root paths and the levels they touch,
    // while the full model materializes every same-level pair.
    let (lo, hi) = (1usize << (depth - 1), (1usize << depth) - 1);
    let q = parse_query(&format!("?- sg(n{lo}, n{hi})."), &mut syms).expect("query parses");
    results.push(run_workload(
        "sg_point",
        format!("complete binary tree, depth {depth}, query sg(n{lo}, n{hi})"),
        &rb,
        &db,
        &Task::Holds(q),
        &POINT_CONFIGS,
        repeats,
    ));

    // Hamiltonian path (Example 7) with the unvisited-reachability
    // pruning relation: negation + hypothetical branching, and a
    // genuinely recursive fixpoint recomputed inside every augmented
    // database the search explores. A chain plus skip edges keeps the
    // per-branch `reach` fixpoint deep — the regime where naive
    // re-derivation compounds.
    let hn = if quick { 12 } else { 16 };
    let mut g = Digraph::chain(hn);
    for i in (0..hn.saturating_sub(2)).step_by(3) {
        g.edges.push((i, i + 2));
    }
    let (rb, db, mut syms) = hamiltonian_reach_program(&g);
    let q = parse_query("?- yes.", &mut syms).expect("query parses");
    results.push(run_workload(
        "hamiltonian",
        format!(
            "chain n={hn} with skip edges + reach pruning ({} edges)",
            g.edges.len()
        ),
        &rb,
        &db,
        &Task::Holds(q),
        &MODEL_CONFIGS,
        repeats,
    ));

    // QBF (∃∀∃, 3 blocks): the deep-stratification workload.
    {
        use hdl_encodings::qbf::build::{n as neg, p as pos};
        use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
        let qbf = Qbf {
            prefix: vec![
                (Quant::Exists, vec![0]),
                (Quant::Forall, vec![1]),
                (Quant::Exists, vec![2]),
            ],
            clauses: vec![
                vec![neg(0), pos(2)],
                vec![neg(1), pos(2)],
                vec![pos(0), pos(1), neg(2)],
            ],
        };
        let enc = encode_qbf(&qbf).expect("qbf encodes");
        results.push(run_workload(
            "qbf_eae",
            "exists_forall_exists_def, 3 blocks".into(),
            &enc.rulebase,
            &enc.database,
            &Task::Holds(enc.sat_query()),
            &MODEL_CONFIGS,
            repeats,
        ));
    }

    let report = json(&results, if quick { "quick" } else { "full" }, threads);
    std::fs::write(&out_path, &report).expect("write BENCH json");
    eprintln!("wrote {out_path}");

    let find = |name: &str| {
        results
            .iter()
            .find(|w| w.name == name)
            .expect("workload present")
    };
    let tc_chain = find("tc_chain");
    let tc_dense = find("tc_dense");
    let ham = find("hamiltonian");
    let point: Vec<&WorkloadResult> = results
        .iter()
        .filter(|w| w.magic_attempts_ratio().is_some())
        .collect();
    eprintln!(
        "gates: tc_chain attempts ratio {:.2}x, hamiltonian attempts ratio {:.2}x, \
         tc wall naive/semi {:.2}x|{:.2}x, tc_dense parallel speedup {:.2}x",
        tc_chain.attempts_ratio(),
        ham.attempts_ratio(),
        tc_chain.wall_ratio_naive_over_semi(),
        tc_dense.wall_ratio_naive_over_semi(),
        tc_dense.parallel_speedup(),
    );
    for w in &point {
        eprintln!(
            "gates: {} semi/magic attempts ratio {:.2}x",
            w.name,
            w.magic_attempts_ratio().unwrap_or(0.0)
        );
    }

    if check {
        let mut failed = false;
        // Deterministic gate: delta-rotation must cut attempts ≥ 3× on
        // the chain-TC and Hamiltonian workloads.
        for (w, min) in [(tc_chain, 3.0), (ham, 3.0)] {
            if w.attempts_ratio() < min {
                eprintln!(
                    "GATE FAILED: {} attempts ratio {:.2} < {min}",
                    w.name,
                    w.attempts_ratio()
                );
                failed = true;
            }
        }
        // Wall-clock gate: semi-naive must not be slower than naive on
        // the transitive-closure workloads (generous margin — the
        // attempts ratio predicts ≥ 3×).
        for w in [tc_chain, tc_dense] {
            if w.wall_ratio_naive_over_semi() < 1.0 {
                eprintln!(
                    "GATE FAILED: {} semi-naive slower than naive ({:.2}x)",
                    w.name,
                    w.wall_ratio_naive_over_semi()
                );
                failed = true;
            }
        }
        // Demand gate: the magic rewrite must cut attempts ≥ 10× versus
        // single-threaded semi-naive on at least two point-query
        // workloads (deterministic counters, so this is stable).
        let strong = point
            .iter()
            .filter(|w| w.magic_attempts_ratio().unwrap_or(0.0) >= 10.0)
            .count();
        if strong < 2 {
            for w in &point {
                eprintln!(
                    "  {} semi/magic attempts ratio {:.2}",
                    w.name,
                    w.magic_attempts_ratio().unwrap_or(0.0)
                );
            }
            eprintln!(
                "GATE FAILED: only {strong} point workloads reached a 10x demand ratio (need 2)"
            );
            failed = true;
        }
        // Spawn-gate regression guard: when every round's delta falls
        // below `PARALLEL_MIN_DELTA` the w4 run spawns nothing, so it
        // must cost nothing — speedup ≥ 0.95× of single-threaded.
        // Workloads that do spawn are excluded (a low-core host pays
        // thread overhead it cannot recoup), as are runs under 5 ms
        // where timer noise dominates the ratio.
        for w in &results {
            let w4 = w.metrics(&format!("semi_naive_w{PAR_WORKERS}"));
            let gated = w4.parallel_rounds == 0 && w.metrics("semi_naive_w1").wall_ms >= 5.0;
            if gated && w.parallel_speedup() < 0.95 {
                eprintln!(
                    "GATE FAILED: {} skipped all parallel rounds yet speedup {:.2} < 0.95",
                    w.name,
                    w.parallel_speedup()
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("all gates passed");
    }
}
