//! `serve` — the tracked network-server benchmark behind `BENCH_serve.json`.
//!
//! Two measurement families, both over real TCP against an in-process
//! [`Server`]:
//!
//! - **Durable mutation throughput** under a multi-tenant workload:
//!   one pipelining connection per tenant, each writing a window of
//!   `load` requests in a single burst and then collecting the replies
//!   (exactly how a batching client library drives a database), for
//!   every combination of fsync policy (`always`, `never`) and group
//!   commit (on, off). The headline number is the `always` speedup:
//!   with group commit the server sweeps each burst into one mutation
//!   window — one snapshot, one publish, one fsync pass shared across
//!   tenants — where the per-mutation path pays one fsync per ack.
//! - **Query latency** (p50/p99) on a loaded tenant while background
//!   connections keep mutating a second tenant — the interactive
//!   experience of a reader sharing the server with writers.
//! - **Sync-vs-async ack latency** on a replicated pair: the same
//!   single-mutation workload on an async tenant (ack after the local
//!   fsync) and a sync tenant (`open` with `"sync":1` — ack waits for
//!   the follower to cover the commit), bounding the price of a quorum
//!   ack and proving async tenants keep their latency.
//!
//! ```console
//! $ cargo run --release -p hdl-bench --bin serve            # full sizes
//! $ cargo run --release -p hdl-bench --bin serve -- --quick # CI sizes
//! $ cargo run --release -p hdl-bench --bin serve -- --check # quick + gates
//! ```
//!
//! `--check` exits non-zero if group commit fails to deliver a ≥10×
//! mutation-throughput speedup over per-mutation fsync at `always`. The
//! gated ratio is measured single-stream (one tenant, one pipelined
//! connection), where the two sides differ only in the commit path; the
//! multi-tenant ratio is also reported, but on ext4-style journals the
//! kernel merges the *baseline's* concurrent fsyncs too (its own group
//! commit), so that ratio understates the server's. The gate is skipped
//! (and says so in the report) on filesystems where fsync is
//! effectively free — there is nothing to amortize there, so the ratio
//! measures noise, not the server.

use hdl_persist::FsyncPolicy;
use hdl_server::{Json, Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Instant;

/// Scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("hdl-bench-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench scratch dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One synchronous wire-protocol client: send a line, read the reply.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> Json {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes()).expect("send request");
        stream.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        Json::parse(reply.trim()).expect("parse reply")
    }

    fn send_ok(&mut self, line: &str) -> Json {
        let reply = self.send(line);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {line} -> {reply}"
        );
        reply
    }

    /// Pipelines a prebuilt burst of `count` newline-terminated
    /// requests: writes it in one syscall, then reads one reply per
    /// request. The ack check is a substring probe, not a JSON parse —
    /// the client must not spend the benchmark core decoding replies.
    fn pipeline_ok(&mut self, burst: &str, count: usize) {
        let stream = self.reader.get_mut();
        stream.write_all(burst.as_bytes()).expect("send burst");
        let mut reply = String::new();
        for _ in 0..count {
            reply.clear();
            self.reader.read_line(&mut reply).expect("read reply");
            assert!(
                reply.contains("\"ok\":true") || reply.contains("\"ok\": true"),
                "request failed: {reply}"
            );
        }
    }
}

/// How fast this filesystem really fsyncs: append + fdatasync in a tight
/// loop. Decides whether the `--check` speedup gate is meaningful.
fn probe_fsync_per_sec() -> f64 {
    let dir = TempDir::new("fsync-probe");
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.0.join("probe"))
        .expect("open probe file");
    let mut file = file;
    let n = 100u32;
    let start = Instant::now();
    for i in 0..n {
        file.write_all(&i.to_le_bytes()).expect("probe write");
        file.sync_data().expect("probe fsync");
    }
    f64::from(n) / start.elapsed().as_secs_f64()
}

struct MutationRun {
    policy_name: &'static str,
    group_commit: bool,
    tenants: usize,
    connections_per_tenant: usize,
    window: usize,
    mutations: usize,
    elapsed_s: f64,
    mutations_per_sec: f64,
    /// The committer's own counters (`Json::Null` with group commit off).
    group_stats: Json,
    connections_total: u64,
}

/// Runs the mutation workload against a fresh server: every connection
/// loads `per_conn` unique facts, pipelined in bursts of `window`
/// requests (write the burst, then collect the acks).
fn run_mutations(
    policy: FsyncPolicy,
    policy_name: &'static str,
    group_commit: bool,
    tenants: usize,
    connections_per_tenant: usize,
    per_conn: usize,
    window: usize,
) -> MutationRun {
    let dir = TempDir::new(&format!("mut-{policy_name}-{group_commit}"));
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(dir.0.clone()),
        fsync: policy,
        group_commit,
        max_connections: tenants * connections_per_tenant + 8,
        workers_per_tenant: 1,
        ..ServerConfig::default()
    })
    .expect("start bench server");
    let addr = server.addr();

    // Connect and open tenants before the clock starts: this measures
    // mutation throughput, not connection setup.
    let mut clients: Vec<(usize, usize, Client)> = Vec::new();
    for t in 0..tenants {
        for c in 0..connections_per_tenant {
            let mut client = Client::connect(addr);
            client.send_ok(&format!("{{\"op\":\"open\",\"tenant\":\"t{t}\"}}"));
            clients.push((t, c, client));
        }
    }

    // Prebuild every burst before the clock starts: request formatting
    // is client-side work that would otherwise share the benchmark core
    // with the server under measurement.
    let bursts: Vec<Vec<(String, usize)>> = clients
        .iter()
        .map(|(t, c, _)| {
            let mut bursts = Vec::new();
            let mut j = 0;
            while j < per_conn {
                let n = window.min(per_conn - j);
                let mut burst = String::new();
                for k in j..j + n {
                    let _ = writeln!(
                        burst,
                        "{{\"op\":\"load\",\"program\":\"p(t{t}_c{c}_{k}).\"}}"
                    );
                }
                bursts.push((burst, n));
                j += n;
            }
            bursts
        })
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for ((_, _, client), bursts) in clients.iter_mut().zip(&bursts) {
            scope.spawn(move || {
                for (burst, n) in bursts {
                    client.pipeline_ok(burst, *n);
                }
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut observer = Client::connect(addr);
    let stats = observer.send_ok("{\"op\":\"stats\"}");
    let server_stats = stats.get("server").cloned().unwrap_or(Json::Null);
    let group_stats = server_stats
        .get("group_commit")
        .cloned()
        .unwrap_or(Json::Null);
    let connections_total = server_stats
        .get("connections_total")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    drop(observer);
    drop(clients);
    server.drain();

    let mutations = tenants * connections_per_tenant * per_conn;
    MutationRun {
        policy_name,
        group_commit,
        tenants,
        connections_per_tenant,
        window,
        mutations,
        elapsed_s,
        mutations_per_sec: mutations as f64 / elapsed_s,
        group_stats,
        connections_total,
    }
}

struct ReplicationRun {
    facts: usize,
    primary_mutations_per_sec: f64,
    /// Wall time from the last primary ack until the follower answers
    /// the last fact — what an operator calls replication lag.
    lag_ms: f64,
    /// Wall time from sending `promote` until the first write is acked
    /// by the promoted follower — the failover window.
    failover_ms: f64,
    converged: bool,
}

/// Runs a replicated pair in-process: loads `facts` through the primary,
/// measures how far the follower trails the last ack, then promotes the
/// follower and measures how long until it accepts its first write.
fn run_replication(facts: usize, window: usize) -> ReplicationRun {
    let p_dir = TempDir::new("rep-primary");
    let f_dir = TempDir::new("rep-follower");
    let follower = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(f_dir.0.clone()),
        fsync: FsyncPolicy::Always,
        group_commit: true,
        follow: Some("primary".into()),
        workers_per_tenant: 1,
        ..ServerConfig::default()
    })
    .expect("start bench follower");
    let primary = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(p_dir.0.clone()),
        fsync: FsyncPolicy::Always,
        group_commit: true,
        replicate_to: vec![follower.addr().to_string()],
        workers_per_tenant: 1,
        ..ServerConfig::default()
    })
    .expect("start bench primary");

    let mut writer = Client::connect(primary.addr());
    writer.send_ok("{\"op\":\"open\",\"tenant\":\"r\"}");
    let mut bursts: Vec<(String, usize)> = Vec::new();
    let mut j = 0;
    while j < facts {
        let n = window.min(facts - j);
        let mut burst = String::new();
        for k in j..j + n {
            let _ = writeln!(burst, "{{\"op\":\"load\",\"program\":\"p(r{k}).\"}}");
        }
        bursts.push((burst, n));
        j += n;
    }
    let start = Instant::now();
    for (burst, n) in &bursts {
        writer.pipeline_ok(burst, *n);
    }
    let ack_elapsed = start.elapsed().as_secs_f64();

    // Lag: poll the follower for the last fact. The shipper is async, so
    // this is exactly the staleness a read replica exposes to clients.
    let last_ack = Instant::now();
    let ask = format!("{{\"op\":\"query\",\"q\":\"p(r{})\"}}", facts - 1);
    let mut follower_reader = Client::connect(follower.addr());
    follower_reader.send_ok("{\"op\":\"open\",\"tenant\":\"r\"}");
    let mut converged = false;
    while last_ack.elapsed().as_secs_f64() < 30.0 {
        let reply = follower_reader.send_ok(&ask);
        if reply.get("result").and_then(Json::as_str) == Some("true") {
            converged = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let lag_ms = last_ack.elapsed().as_secs_f64() * 1e3;

    // Failover: stop the primary, promote the follower, and time the
    // window until it acks its first write.
    drop(writer);
    primary.drain();
    let failover_start = Instant::now();
    follower_reader.send_ok("{\"op\":\"promote\"}");
    let mut promoted = Client::connect(follower.addr());
    promoted.send_ok("{\"op\":\"open\",\"tenant\":\"r\"}");
    promoted.send_ok("{\"op\":\"load\",\"program\":\"p(after_failover).\"}");
    let failover_ms = failover_start.elapsed().as_secs_f64() * 1e3;
    drop(promoted);
    drop(follower_reader);
    follower.drain();

    ReplicationRun {
        facts,
        primary_mutations_per_sec: facts as f64 / ack_elapsed,
        lag_ms,
        failover_ms,
        converged,
    }
}

/// One side of the sync-vs-async ack-latency comparison.
struct AckSide {
    p50_us: f64,
    p99_us: f64,
    /// Sync acks that timed out of the quorum wait and degraded. On a
    /// healthy in-process pair this must stay zero.
    degraded: usize,
}

struct AckLatencyRun {
    samples: usize,
    async_side: AckSide,
    sync_side: AckSide,
}

/// Times `samples` single mutations on `tenant` end to end (send →
/// ack), with the tenant's sync quorum set over the wire via the `open`
/// override. Degraded acks are counted, not failed.
fn measure_acks(addr: SocketAddr, tenant: &str, sync: u64, samples: usize) -> AckSide {
    let mut client = Client::connect(addr);
    client.send_ok(&format!(
        "{{\"op\":\"open\",\"tenant\":\"{tenant}\",\"sync\":{sync}}}"
    ));
    let warmup = 10usize;
    let mut lats: Vec<f64> = Vec::with_capacity(samples);
    let mut degraded = 0usize;
    for i in 0..samples + warmup {
        let line = format!("{{\"op\":\"load\",\"program\":\"a({tenant}_{i}).\"}}");
        let start = Instant::now();
        let reply = client.send(&line);
        let lat_us = start.elapsed().as_secs_f64() * 1e6;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            assert_eq!(
                reply.get("kind").and_then(Json::as_str),
                Some("degraded_ack"),
                "mutation failed outright: {reply}"
            );
            degraded += 1;
        }
        if i >= warmup {
            lats.push(lat_us);
        }
    }
    lats.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lats[((lats.len() as f64 - 1.0) * p).round() as usize];
    AckSide {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        degraded,
    }
}

/// Measures per-mutation ack latency on one replicated pair for an
/// async tenant (ack after the local fsync; shipping is fire-and-
/// forget) and a sync tenant (ack additionally waits for the follower
/// to cover the commit position). Same servers, same fsync policy —
/// the only difference is the per-tenant quorum, so the gap is exactly
/// the price of a quorum ack.
fn run_ack_latency(samples: usize) -> AckLatencyRun {
    let p_dir = TempDir::new("ack-primary");
    let f_dir = TempDir::new("ack-follower");
    let follower = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(f_dir.0.clone()),
        fsync: FsyncPolicy::Always,
        group_commit: true,
        follow: Some("primary".into()),
        workers_per_tenant: 1,
        ..ServerConfig::default()
    })
    .expect("start ack follower");
    let primary = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(p_dir.0.clone()),
        fsync: FsyncPolicy::Always,
        group_commit: true,
        replicate_to: vec![follower.addr().to_string()],
        workers_per_tenant: 1,
        ..ServerConfig::default()
    })
    .expect("start ack primary");

    let async_side = measure_acks(primary.addr(), "fire", 0, samples);
    let sync_side = measure_acks(primary.addr(), "quorum", 1, samples);
    primary.drain();
    follower.drain();
    AckLatencyRun {
        samples,
        async_side,
        sync_side,
    }
}

struct QueryRun {
    queries: usize,
    background_mutators: usize,
    p50_us: f64,
    p99_us: f64,
}

/// Measures query latency on a loaded tenant while background
/// connections keep mutating a different tenant.
fn run_queries(chain: usize, queries: usize, background_mutators: usize) -> QueryRun {
    let dir = TempDir::new("query");
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        persist_root: Some(dir.0.clone()),
        fsync: FsyncPolicy::Always,
        group_commit: true,
        max_connections: background_mutators + 8,
        workers_per_tenant: 2,
        ..ServerConfig::default()
    })
    .expect("start bench server");
    let addr = server.addr();

    let mut reader = Client::connect(addr);
    reader.send_ok("{\"op\":\"open\",\"tenant\":\"reader\"}");
    let mut program = String::from("tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
    for i in 0..chain {
        let _ = write!(program, " edge(n{i}, n{}).", i + 1);
    }
    reader.send_ok(&format!("{{\"op\":\"load\",\"program\":\"{program}\"}}"));

    let stop = AtomicBool::new(false);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(queries);
    std::thread::scope(|scope| {
        for b in 0..background_mutators {
            let stop = &stop;
            scope.spawn(move || {
                let mut writer = Client::connect(addr);
                writer.send_ok("{\"op\":\"open\",\"tenant\":\"writers\"}");
                let mut j = 0usize;
                while !stop.load(Relaxed) {
                    writer.send_ok(&format!("{{\"op\":\"load\",\"program\":\"w(b{b}_{j}).\"}}"));
                    j += 1;
                }
            });
        }
        let ask = format!("{{\"op\":\"query\",\"q\":\"tc(n0, n{chain})\"}}");
        for _ in 0..queries.min(5) {
            reader.send_ok(&ask); // warm the worker pool and snapshot
        }
        for _ in 0..queries {
            let start = Instant::now();
            let reply = reader.send_ok(&ask);
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert_eq!(reply.get("result").and_then(Json::as_str), Some("true"));
        }
        stop.store(true, Relaxed);
    });
    server.drain();

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    QueryRun {
        queries,
        background_mutators,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = check || args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("BENCH_serve.json"), PathBuf::from);

    // One pipelining connection per tenant: depth comes from the burst
    // window, not from thread count, so the workload behaves the same
    // on a one-core box as on a big one. Two scales per config: the
    // multi-tenant run is the server's headline workload; the
    // single-tenant run isolates the commit path for the speedup gate,
    // because with several tenants fsyncing concurrently the kernel's
    // own journal already merges the no-group baseline's syncs
    // (kernel-level group commit), understating the server's.
    // Facts per tenant are held constant across the two scales: the
    // snapshot a mutation window pays for is O(database), so letting the
    // single-tenant run accumulate the multi-tenant run's *total* would
    // measure database size, not the commit path.
    let (window, per_tenant) = (256, if quick { 1536usize } else { 6144 });
    let scales: [(usize, usize); 2] = [(4, 1), (1, 1)];
    let (chain, queries, movers) = if quick { (60, 80, 2) } else { (120, 300, 4) };

    eprintln!("probing fsync cost...");
    let fsync_per_sec = probe_fsync_per_sec();
    eprintln!("  {fsync_per_sec:.0} fsync/s");

    let configs: [(FsyncPolicy, &'static str, bool); 4] = [
        (FsyncPolicy::Always, "always", true),
        (FsyncPolicy::Always, "always", false),
        (FsyncPolicy::Never, "never", true),
        (FsyncPolicy::Never, "never", false),
    ];
    let mut runs: Vec<MutationRun> = Vec::new();
    for (tenants, conns) in scales {
        let per_conn = per_tenant / conns;
        for (policy, name, group) in configs {
            eprintln!(
                "mutations: fsync={name} group_commit={group} \
                 ({tenants} tenants x {conns} connections x {per_conn}, window {window})..."
            );
            let run = run_mutations(policy, name, group, tenants, conns, per_conn, window);
            eprintln!(
                "  {:.0} mutations/s ({} in {:.2}s)",
                run.mutations_per_sec, run.mutations, run.elapsed_s
            );
            runs.push(run);
        }
    }

    let rate = |tenants: usize, name: &str, group: bool| {
        runs.iter()
            .find(|r| r.tenants == tenants && r.policy_name == name && r.group_commit == group)
            .map(|r| r.mutations_per_sec)
            .expect("config ran")
    };
    // The gated ratio is single-stream: both sides run the identical
    // pipelined workload and only the commit path differs.
    let speedup_always = rate(1, "always", true) / rate(1, "always", false);
    let speedup_always_multi = rate(4, "always", true) / rate(4, "always", false);
    eprintln!(
        "group-commit speedup at fsync=always: {speedup_always:.1}x single-tenant, \
         {speedup_always_multi:.1}x multi-tenant (kernel merges the multi-tenant baseline)"
    );

    eprintln!("query latency under background writers...");
    let qrun = run_queries(chain, queries, movers);
    eprintln!("  p50 {:.0}us  p99 {:.0}us", qrun.p50_us, qrun.p99_us);

    let rep_facts = if quick { 1024 } else { 4096 };
    eprintln!("replication lag and failover ({rep_facts} facts)...");
    let rep = run_replication(rep_facts, window);
    eprintln!(
        "  {:.0} mutations/s while replicating, lag {:.1}ms, failover {:.1}ms",
        rep.primary_mutations_per_sec, rep.lag_ms, rep.failover_ms
    );

    let ack_samples = if quick { 150 } else { 600 };
    eprintln!("sync-vs-async ack latency ({ack_samples} samples per side)...");
    let ack = run_ack_latency(ack_samples);
    let ack_ratio = ack.sync_side.p50_us / ack.async_side.p50_us;
    eprintln!(
        "  async p50 {:.0}us  sync p50 {:.0}us  ({ack_ratio:.1}x, {} degraded)",
        ack.async_side.p50_us, ack.sync_side.p50_us, ack.sync_side.degraded
    );

    // The gate only means something where fsync has a real cost: on a
    // device where it is nearly free (ramdisk, write-cache lies), both
    // paths run at memory speed and the ratio is noise.
    let gate_meaningful = fsync_per_sec < 50_000.0;
    let gate_pass = speedup_always >= 10.0;
    // The replication gate is correctness-shaped, so it is meaningful on
    // any filesystem: the follower must converge and a promote-and-write
    // failover must land well inside operator reflexes.
    let rep_pass = rep.converged && rep.failover_ms < 5_000.0;
    // The ack-latency gate bounds the price of a quorum ack at 5x the
    // async p50 with zero degraded acks on a healthy pair. Like the
    // speedup gate it only means something where fsync has a real cost:
    // when fsync is free the async ack is a bare loopback round trip
    // and the ratio measures thread-wakeup noise, not the design.
    let ack_pass = ack_ratio < 5.0 && ack.sync_side.degraded == 0;

    let mut report = String::new();
    let _ = writeln!(report, "{{");
    let _ = writeln!(report, "  \"schema\": \"bench_serve/v1\",");
    let _ = writeln!(report, "  \"quick\": {quick},");
    let _ = writeln!(report, "  \"fsync_probe_per_sec\": {fsync_per_sec:.0},");
    let _ = writeln!(report, "  \"mutation_throughput\": [");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            report,
            "    {{\"fsync\": \"{}\", \"group_commit\": {}, \"tenants\": {}, \
             \"connections_per_tenant\": {}, \"pipeline_window\": {}, \
             \"connections_total\": {}, \
             \"mutations\": {}, \"elapsed_s\": {:.4}, \"mutations_per_sec\": {:.0}, \
             \"group\": {}}}{comma}",
            run.policy_name,
            run.group_commit,
            run.tenants,
            run.connections_per_tenant,
            run.window,
            run.connections_total,
            run.mutations,
            run.elapsed_s,
            run.mutations_per_sec,
            run.group_stats,
        );
    }
    let _ = writeln!(report, "  ],");
    let _ = writeln!(
        report,
        "  \"group_commit_speedup_always\": {speedup_always:.2},"
    );
    let _ = writeln!(
        report,
        "  \"group_commit_speedup_always_multitenant\": {speedup_always_multi:.2},"
    );
    let _ = writeln!(
        report,
        "  \"query_latency\": {{\"queries\": {}, \"background_mutators\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        qrun.queries, qrun.background_mutators, qrun.p50_us, qrun.p99_us
    );
    let _ = writeln!(
        report,
        "  \"replication\": {{\"facts\": {}, \"primary_mutations_per_sec\": {:.0}, \
         \"lag_ms\": {:.2}, \"failover_ms\": {:.2}, \"converged\": {}}},",
        rep.facts, rep.primary_mutations_per_sec, rep.lag_ms, rep.failover_ms, rep.converged
    );
    let _ = writeln!(
        report,
        "  \"ack_latency\": {{\"samples\": {}, \
         \"async\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"degraded\": {}}}, \
         \"sync\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"degraded\": {}}}, \
         \"sync_over_async_p50\": {ack_ratio:.2}}},",
        ack.samples,
        ack.async_side.p50_us,
        ack.async_side.p99_us,
        ack.async_side.degraded,
        ack.sync_side.p50_us,
        ack.sync_side.p99_us,
        ack.sync_side.degraded,
    );
    let _ = writeln!(
        report,
        "  \"check\": {{\"gate\": \"group commit >= 10x per-mutation fsync at always (single-stream)\", \
         \"meaningful\": {gate_meaningful}, \"pass\": {gate_pass}, \
         \"replication_gate\": \"follower converges; promote-and-write < 5s\", \
         \"replication_pass\": {rep_pass}, \
         \"ack_gate\": \"sync-ack p50 < 5x async p50, zero degraded acks\", \
         \"ack_pass\": {ack_pass}}}"
    );
    let _ = writeln!(report, "}}");

    std::fs::write(&out, &report).expect("write report");
    eprintln!("wrote {}", out.display());

    if check {
        if !gate_meaningful {
            eprintln!(
                "check: SKIPPED speedup gate (fsync measures {fsync_per_sec:.0}/s — \
                 effectively free, nothing to amortize)"
            );
        } else if !gate_pass {
            eprintln!(
                "check: FAIL group-commit speedup {speedup_always:.1}x < 10x at fsync=always"
            );
            std::process::exit(1);
        } else {
            eprintln!("check: OK group-commit speedup {speedup_always:.1}x >= 10x");
        }
        if !rep_pass {
            eprintln!(
                "check: FAIL replication (converged={}, failover {:.1}ms)",
                rep.converged, rep.failover_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "check: OK replication lag {:.1}ms, failover {:.1}ms",
            rep.lag_ms, rep.failover_ms
        );
        if !gate_meaningful {
            eprintln!(
                "check: SKIPPED ack-latency gate (fsync effectively free — \
                 the async baseline is a bare loopback round trip)"
            );
        } else if !ack_pass {
            eprintln!(
                "check: FAIL sync-ack latency {ack_ratio:.1}x async p50 (limit 5x) \
                 with {} degraded acks",
                ack.sync_side.degraded
            );
            std::process::exit(1);
        } else {
            eprintln!("check: OK sync-ack latency {ack_ratio:.1}x async p50");
        }
    }
}
