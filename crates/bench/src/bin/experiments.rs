//! Regenerates the result tables in EXPERIMENTS.md.
//!
//! Unlike the Criterion benches (which measure wall time), this binary
//! prints the *semantic* results: verdicts, work counters, stratification
//! shapes, and bound checks — everything EXPERIMENTS.md quotes.
//!
//! Run with `cargo run --release -p hdl-bench --bin experiments`.

use hdl_base::{Database, GroundAtom, Symbol, SymbolTable};
use hdl_bench::workloads::{
    chain_program, hamiltonian_program, layered_rulebase, parity_program, random_digraph, Digraph,
};
use hdl_core::analysis::stratify::linear_stratification;
use hdl_core::engine::{BottomUpEngine, ProveEngine, TopDownEngine};
use hdl_core::parser::parse_query;
use hdl_encodings::lemma2::unary_query_rulebase;
use hdl_encodings::tm::encode;
use hdl_turing::{library, Cascade, Sym};
use std::time::Instant;

fn main() {
    e1_university();
    e2_chains();
    e3_parity();
    e4_hamiltonian();
    e5_stratification();
    e6_tm_encoding();
    e7_prove_bounds();
    e8_expressibility();
    e9_hierarchy();
    e10_baseline();
    e11_qbf();
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn e11_qbf() {
    use hdl_encodings::qbf::build::{n as neg, p as pos, sat};
    use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
    banner("E11 (extension): QBF as stratified rulebases");
    println!(
        "{:<34} {:>7} {:>6} {:>7} {:>8} {:>8} {:>10}",
        "formula", "blocks", "rules", "strata", "derived", "direct", "eval_us"
    );
    let cases: Vec<(&str, Qbf)> = vec![
        (
            "sat_2clauses",
            sat(2, vec![vec![pos(0), pos(1)], vec![neg(0), pos(1)]]),
        ),
        (
            "unsat_x_and_not_x",
            sat(1, vec![vec![pos(0)], vec![neg(0)]]),
        ),
        (
            "exists_forall_or",
            Qbf {
                prefix: vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![1])],
                clauses: vec![vec![pos(0), pos(1)]],
            },
        ),
        (
            "forall_exists_xor",
            Qbf {
                prefix: vec![(Quant::Forall, vec![0]), (Quant::Exists, vec![1])],
                clauses: vec![vec![pos(0), pos(1)], vec![neg(0), neg(1)]],
            },
        ),
        (
            "exists_forall_exists_def",
            Qbf {
                prefix: vec![
                    (Quant::Exists, vec![0]),
                    (Quant::Forall, vec![1]),
                    (Quant::Exists, vec![2]),
                ],
                clauses: vec![
                    vec![neg(0), pos(2)],
                    vec![neg(1), pos(2)],
                    vec![pos(0), pos(1), neg(2)],
                ],
            },
        ),
    ];
    for (label, qbf) in cases {
        let direct = qbf.eval();
        let enc = encode_qbf(&qbf).unwrap();
        let ls = linear_stratification(&enc.rulebase).unwrap();
        let t0 = Instant::now();
        let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        let derived = eng.holds(&enc.sat_query()).unwrap();
        let us = t0.elapsed().as_micros();
        assert_eq!(derived, direct);
        println!(
            "{label:<34} {:>7} {:>6} {:>7} {derived:>8} {direct:>8} {us:>10}",
            qbf.prefix.len(),
            enc.rulebase.len(),
            ls.num_strata()
        );
    }
}

fn e1_university() {
    banner("E1: Examples 1-3 (university)");
    let src = "
        take(tony, cs250). take(tony, his101).
        take(alice, his101). take(alice, eng201).
        take(bob, cs452).
        grad(S) :- take(S, his101), take(S, eng201).
    ";
    let mut syms = SymbolTable::new();
    let program = hdl_core::parser::parse_program(src, &mut syms).unwrap();
    let (rules, facts) = hdl_core::parser::split_facts(program);
    let db: Database = facts.into_iter().collect();
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    for q in [
        "?- grad(alice).",
        "?- grad(tony).",
        "?- grad(tony)[add: take(tony, eng201)].",
        "?- grad(tony)[add: take(tony, C)].",
        "?- grad(bob)[add: take(bob, C)].",
    ] {
        let query = parse_query(q, &mut syms).unwrap();
        println!("{q:<45} => {}", eng.holds(&query).unwrap());
    }
}

fn e2_chains() {
    banner("E2: Examples 4-5 (hypothetical chains)");
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "n", "time_us", "dbs", "expansions"
    );
    for n in [4usize, 16, 64, 128, 256] {
        let (rules, db, mut syms) = chain_program(n);
        let q = parse_query("?- a1.", &mut syms).unwrap();
        let start = Instant::now();
        let mut eng = TopDownEngine::new(&rules, &db).unwrap();
        assert!(eng.holds(&q).unwrap());
        let us = start.elapsed().as_micros();
        println!(
            "{n:>6} {us:>12} {:>10} {:>10}",
            eng.stats().databases_created,
            eng.stats().goal_expansions
        );
    }
}

fn e3_parity() {
    banner("E3: Example 6 (parity of |a|)");
    println!(
        "{:>4} {:>6} {:>6} {:>12} {:>12} {:>12}",
        "n", "even", "odd", "td_us", "bu_us", "prove_us"
    );
    for n in 0..=9 {
        let (rules, db, mut syms) = parity_program(n);
        let qe = parse_query("?- even.", &mut syms).unwrap();
        let qo = parse_query("?- odd.", &mut syms).unwrap();

        let t0 = Instant::now();
        let mut td = TopDownEngine::new(&rules, &db).unwrap();
        let even = td.holds(&qe).unwrap();
        let odd = td.holds(&qo).unwrap();
        let td_us = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let mut bu = BottomUpEngine::new(&rules, &db).unwrap();
        assert_eq!(bu.holds(&qe).unwrap(), even);
        let bu_us = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let mut pe = ProveEngine::new(&rules, &db).unwrap();
        assert_eq!(pe.holds(&qe).unwrap(), even);
        let pe_us = t0.elapsed().as_micros();

        assert_eq!(even, n % 2 == 0);
        assert_eq!(odd, n % 2 == 1);
        println!("{n:>4} {even:>6} {odd:>6} {td_us:>12} {bu_us:>12} {pe_us:>12}");
    }
}

fn e4_hamiltonian() {
    banner("E4: Examples 7-8 (Hamiltonian path, NP search)");
    println!(
        "{:>3} {:<12} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "n", "graph", "rb", "dfs", "rb_us", "dfs_us", "dbs"
    );
    for n in 3..=7 {
        for (label, g) in [
            ("chain", Digraph::chain(n)),
            ("star", Digraph::star(n)),
            ("rand_d04", random_digraph(n, 0.4, 42)),
        ] {
            let t0 = Instant::now();
            let direct = g.has_hamiltonian_path();
            let dfs_us = t0.elapsed().as_micros();

            let (rules, db, mut syms) = hamiltonian_program(&g);
            let q = parse_query("?- yes.", &mut syms).unwrap();
            let t0 = Instant::now();
            let mut eng = TopDownEngine::new(&rules, &db).unwrap();
            let rb = eng.holds(&q).unwrap();
            let rb_us = t0.elapsed().as_micros();
            assert_eq!(rb, direct);
            println!(
                "{n:>3} {label:<12} {rb:>6} {direct:>6} {rb_us:>12} {dfs_us:>12} {:>10}",
                eng.stats().databases_created
            );
        }
    }
}

fn e5_stratification() {
    banner("E5: Lemma 1 (stratification decision + relaxation)");
    println!(
        "{:>4} {:>4} {:>6} {:>8} {:>12} {:>12}",
        "k", "w", "rules", "strata", "iterations", "time_us"
    );
    for (k, w) in [(1usize, 1usize), (2, 2), (4, 4), (8, 8), (16, 16), (32, 16)] {
        let (rb, _) = layered_rulebase(k, w);
        let t0 = Instant::now();
        let ls = linear_stratification(&rb).unwrap();
        let us = t0.elapsed().as_micros();
        println!(
            "{k:>4} {w:>4} {:>6} {:>8} {:>12} {us:>12}",
            rb.len(),
            ls.num_strata(),
            ls.relaxation_iterations
        );
        assert_eq!(ls.num_strata(), k);
    }
}

fn e6_tm_encoding() {
    banner("E6: Theorem 1 lower bound (oracle TM -> rulebase)");
    println!(
        "{:<32} {:>6} {:>6} {:>7} {:>8} {:>8} {:>12}",
        "machine/input", "rules", "facts", "strata", "derived", "direct", "eval_us"
    );
    let cascade = Cascade::new(vec![library::contains_one()]).unwrap();
    for input in [vec![], vec![Sym(0), Sym(1)], vec![Sym(0), Sym(0), Sym(0)]] {
        let bound = 6;
        let enc = encode(&cascade, &input, bound).unwrap();
        let ls = linear_stratification(&enc.rulebase).unwrap();
        let direct = cascade.accepts(&input, bound);
        let t0 = Instant::now();
        let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        let derived = eng.holds(&enc.accept_query()).unwrap();
        let us = t0.elapsed().as_micros();
        assert_eq!(derived, direct);
        let label = format!(
            "contains_one/{:?}",
            input.iter().map(|s| s.0).collect::<Vec<_>>()
        );
        println!(
            "{label:<32} {:>6} {:>6} {:>7} {derived:>8} {direct:>8} {us:>12}",
            enc.rulebase.len(),
            enc.database.len(),
            ls.num_strata()
        );
    }
    for (top, label) in [
        (library::write_then_ask(Sym(1), true), "sigma2/write1_yes"),
        (library::write_then_ask(Sym(0), true), "sigma2/write0_yes"),
        (library::write_then_ask(Sym(0), false), "sigma2/write0_no"),
        (library::guess_and_ask(1), "sigma2/guess1_yes"),
    ] {
        let cascade = Cascade::new(vec![top, library::contains_one()]).unwrap();
        let enc = encode(&cascade, &[], 8).unwrap();
        let ls = linear_stratification(&enc.rulebase).unwrap();
        let direct = cascade.accepts(&[], 8);
        let t0 = Instant::now();
        let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        let derived = eng.holds(&enc.accept_query()).unwrap();
        let us = t0.elapsed().as_micros();
        assert_eq!(derived, direct);
        println!(
            "{label:<32} {:>6} {:>6} {:>7} {derived:>8} {direct:>8} {us:>12}",
            enc.rulebase.len(),
            enc.database.len(),
            ls.num_strata()
        );
    }
}

fn e7_prove_bounds() {
    banner("E7: Theorem 3 (PROVE goal-sequence budget, parity workload)");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "n", "sigma_expans", "budget(4(n+1)^2)", "within"
    );
    for n in [2usize, 4, 6, 8, 10] {
        let (rules, db, mut syms) = parity_program(n);
        let q = parse_query("?- even.", &mut syms).unwrap();
        let mut pe = ProveEngine::new(&rules, &db).unwrap();
        assert_eq!(pe.holds(&q).unwrap(), n % 2 == 0);
        let e = pe.stats().sigma_expansions[0];
        let budget = 4 * (n as u64 + 1).pow(2);
        println!("{n:>4} {e:>14} {budget:>14} {:>10}", e <= budget);
        assert!(e <= budget);
    }
}

fn e8_expressibility() {
    banner("E8: section 6 (generic queries on unordered domains)");
    let nonempty = Cascade::new(vec![library::bitmap_nonempty()]).unwrap();
    let parity = Cascade::new(vec![library::bitmap_even_ones()]).unwrap();
    println!(
        "{:<22} {:>3} {:>4} {:>8} {:>8} {:>12}",
        "query", "n", "|p|", "derived", "truth", "eval_us"
    );
    type Truth = fn(usize) -> bool;
    let cases: [(&Cascade, &str, Truth); 2] = [
        (&nonempty, "nonempty", |m| m >= 1),
        (&parity, "even_cardinality", |m| m % 2 == 0),
    ];
    for (cascade, qname, truth) in cases {
        for n in 2..=3usize {
            for m in 0..=n {
                let enc = unary_query_rulebase(cascade, 2, false).unwrap();
                let mut syms = enc.symbols.clone();
                let consts: Vec<Symbol> = (0..n).map(|i| syms.intern(&format!("a{i}"))).collect();
                let mut db = Database::new();
                for &c in &consts {
                    db.insert(GroundAtom::new(enc.domain, vec![c]));
                }
                for &c in consts.iter().take(m) {
                    db.insert(GroundAtom::new(enc.p, vec![c]));
                }
                let t0 = Instant::now();
                let mut eng = TopDownEngine::new(&enc.rulebase, &db).unwrap();
                let derived = eng.holds(&enc.yes_query()).unwrap();
                let us = t0.elapsed().as_micros();
                let want = truth(m);
                assert_eq!(derived, want);
                println!("{qname:<22} {n:>3} {m:>4} {derived:>8} {want:>8} {us:>12}");
            }
        }
    }
}

fn e9_hierarchy() {
    banner("E9: cost vs number of strata (layered workload)");
    println!(
        "{:>4} {:>8} {:>12} {:>12}",
        "k", "verdict", "td_us", "prove_us"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let (rb, mut syms) = layered_rulebase(k, 2);
        let mut db = Database::new();
        for i in 1..=k {
            for j in 0..2 {
                let d = syms.intern(&format!("d_{i}_{j}"));
                db.insert(GroundAtom::new(d, vec![]));
            }
        }
        let q = parse_query(&format!("?- a_{k}_0."), &mut syms).unwrap();
        let expected = k % 2 == 1;
        let t0 = Instant::now();
        let mut td = TopDownEngine::new(&rb, &db).unwrap();
        assert_eq!(td.holds(&q).unwrap(), expected);
        let td_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let mut pe = ProveEngine::new(&rb, &db).unwrap();
        assert_eq!(pe.holds(&q).unwrap(), expected);
        let pe_us = t0.elapsed().as_micros();
        println!("{k:>4} {expected:>8} {td_us:>12} {pe_us:>12}");
    }
}

fn e10_baseline() {
    banner("E10: Datalog baseline (transitive closure over chains)");
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>14} {:>16} {:>10}",
        "n", "tc_pairs", "naive_us", "semi_us", "semi_emitted", "hyp_bottomup_us", "magic_us"
    );
    for n in [8usize, 16, 32, 48] {
        let mut syms = SymbolTable::new();
        let rules = hdl_bench::workloads::tc_rules(&mut syms);
        let db = hdl_bench::workloads::tc_edb(&mut syms, n);
        let tc = syms.lookup("tc").unwrap();
        let expected = n * (n - 1) / 2;

        let t0 = Instant::now();
        let m = hdl_datalog::naive::evaluate(&rules, &db).unwrap();
        let naive_us = t0.elapsed().as_micros();
        assert_eq!(m.count(tc), expected);

        let strat = hdl_datalog::stratify(&rules).unwrap();
        let t0 = Instant::now();
        let (m2, stats) = hdl_datalog::seminaive::evaluate_stratified(&rules, &db, &strat);
        let semi_us = t0.elapsed().as_micros();
        assert_eq!(m2.count(tc), expected);

        let hyp_rules = hdl_core::parser::parse_program(
            "tc(X, Y) :- e(X, Y).
             tc(X, Z) :- e(X, Y), tc(Y, Z).",
            &mut syms,
        )
        .unwrap();
        let t0 = Instant::now();
        let mut eng = BottomUpEngine::new(&hyp_rules, &db).unwrap();
        let m3 = eng.model().unwrap();
        let hyp_us = t0.elapsed().as_micros();
        assert_eq!(m3.count(tc), expected);

        // Magic sets: point query tc(v0, X) — goal-directed bottom-up.
        let v0 = syms.lookup("v0").unwrap();
        let pq = hdl_datalog::magic::PointQuery {
            pred: tc,
            args: vec![Some(v0), None],
        };
        let t0 = Instant::now();
        let answers = hdl_datalog::magic::magic_query(&rules, &db, &pq, &mut syms).unwrap();
        let magic_us = t0.elapsed().as_micros();
        assert_eq!(answers.len(), n - 1);

        println!(
            "{n:>5} {expected:>9} {naive_us:>12} {semi_us:>12} {:>14} {hyp_us:>16} {magic_us:>10}",
            stats.facts_emitted
        );
    }
}
