//! `persist` — the tracked persistence benchmark behind `BENCH_persist.json`.
//!
//! Three measurement families:
//!
//! - **WAL append throughput** by fsync policy (`always`, `every 64`,
//!   `never`): single-fact mutations through a [`DurableSession`], i.e.
//!   the full observer → encode → append → fsync path a live service
//!   pays per acked mutation.
//! - **Checkpoint scaling** vs overlay depth: serialize time, image
//!   size, and cold-restore time for a session whose assumption stack
//!   is `d` frames deep over a fixed base.
//! - **Cold-restore latency** on the Hamiltonian-with-reachability and
//!   QBF workloads, restored two ways: replaying the WAL from scratch
//!   and loading a checkpoint (WAL empty). Every restore is verified
//!   against the uncrashed session's rulebase/database sizes and the
//!   workload's query verdict.
//!
//! ```console
//! $ cargo run --release -p hdl-bench --bin persist            # full sizes
//! $ cargo run --release -p hdl-bench --bin persist -- --quick # CI sizes
//! $ cargo run --release -p hdl-bench --bin persist -- --check # quick + gates
//! ```
//!
//! `--check` exits non-zero if any restore diverges from its source
//! session or a checkpointed restore still replays WAL records.

use hdl_base::GroundAtom;
use hdl_bench::workloads::{hamiltonian_reach_program, random_digraph};
use hdl_core::session::Session;
use hdl_encodings::qbf::build::{n as qn, p as qp};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use hdl_persist::{DurableSession, FsyncPolicy};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("hdl-bench-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench scratch dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dir_file_size(dir: &PathBuf, prefix: &str) -> u64 {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(prefix))
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum()
}

/// Loads a generated `(Rulebase, Database, SymbolTable)` workload into a
/// session by first syncing the symbol table positionally (so ids line
/// up) and then applying the whole program as one mutation.
fn load_workload(
    session: &mut Session,
    rb: &hdl_core::ast::Rulebase,
    db: &hdl_base::Database,
    syms: &hdl_base::SymbolTable,
) {
    let names: Vec<String> = syms.iter().map(|(_, name)| name.to_string()).collect();
    session.sync_symbols(&names);
    let rules: Vec<_> = rb.iter().cloned().collect();
    let facts: Vec<GroundAtom> = db.iter_facts().collect();
    session
        .apply_program(rules, facts)
        .expect("workload applies");
}

// ---------------------------------------------------------------------
// 1. WAL append throughput by fsync policy.
// ---------------------------------------------------------------------

struct WalRun {
    policy: &'static str,
    mutations: usize,
    wall_ms: f64,
    per_sec: f64,
    wal_bytes: u64,
}

fn bench_wal(policy: FsyncPolicy, label: &'static str, mutations: usize) -> WalRun {
    let dir = TempDir::new(&format!("wal-{label}"));
    let mut session = DurableSession::open(&dir.0, policy).expect("open");
    // Pre-intern the predicate so per-mutation symbol traffic is just
    // the fresh constant — the steady-state shape of a fact stream.
    let pred = session.symbols_mut().intern("obs");
    let start = Instant::now();
    for i in 0..mutations {
        let c = session.symbols_mut().intern(&format!("c{i}"));
        session
            .assert_fact(GroundAtom::new(pred, vec![c]))
            .expect("assert");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let wal_bytes = dir_file_size(&dir.0, "wal-");
    WalRun {
        policy: label,
        mutations,
        wall_ms,
        per_sec: mutations as f64 / (wall_ms / 1e3),
        wal_bytes,
    }
}

// ---------------------------------------------------------------------
// 2. Checkpoint size / time / restore time vs overlay depth.
// ---------------------------------------------------------------------

struct CkptRun {
    depth: usize,
    base_facts: usize,
    checkpoint_ms: f64,
    image_bytes: u64,
    restore_ms: f64,
    records_replayed: u64,
}

fn bench_checkpoint(depth: usize, base_facts: usize, frame_facts: usize) -> CkptRun {
    let dir = TempDir::new(&format!("ckpt-{depth}"));
    let mut session = DurableSession::open(&dir.0, FsyncPolicy::Never).expect("open");
    let edge = session.symbols_mut().intern("edge");
    let consts: Vec<_> = (0..base_facts + depth * frame_facts + 1)
        .map(|i| session.symbols_mut().intern(&format!("v{i}")))
        .collect();
    for i in 0..base_facts {
        session
            .assert_fact(GroundAtom::new(edge, vec![consts[i], consts[i + 1]]))
            .expect("assert");
    }
    for d in 0..depth {
        let lo = base_facts + d * frame_facts;
        let frame: Vec<_> = (lo..lo + frame_facts)
            .map(|i| GroundAtom::new(edge, vec![consts[i], consts[i + 1]]))
            .collect();
        session.assume(frame).expect("assume");
    }

    let start = Instant::now();
    session.checkpoint().expect("checkpoint");
    let checkpoint_ms = start.elapsed().as_secs_f64() * 1e3;
    let image_bytes = dir_file_size(&dir.0, "ckpt-");
    drop(session);

    let start = Instant::now();
    let restored = DurableSession::open(&dir.0, FsyncPolicy::Never).expect("restore");
    let restore_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = restored.recovery_report().expect("durable").clone();
    assert_eq!(restored.assumptions().len(), depth, "frames restored");
    CkptRun {
        depth,
        base_facts,
        checkpoint_ms,
        image_bytes,
        restore_ms,
        records_replayed: report.records_replayed,
    }
}

// ---------------------------------------------------------------------
// 3. Cold-restore latency on real workloads (WAL replay vs checkpoint).
// ---------------------------------------------------------------------

struct RestoreRun {
    workload: String,
    params: String,
    variant: &'static str,
    restore_ms: f64,
    records_replayed: u64,
    disk_bytes: u64,
    verified: bool,
}

fn bench_restore(
    workload: &str,
    params: &str,
    rb: &hdl_core::ast::Rulebase,
    db: &hdl_base::Database,
    syms: &hdl_base::SymbolTable,
    query: &str,
    from_checkpoint: bool,
) -> RestoreRun {
    let variant = if from_checkpoint { "checkpoint" } else { "wal" };
    let dir = TempDir::new(&format!("restore-{workload}-{variant}"));
    let mut session = DurableSession::open(&dir.0, FsyncPolicy::Never).expect("open");
    load_workload(&mut session, rb, db, syms);
    let expected = session.ask(query).expect("workload query evaluates");
    if from_checkpoint {
        session.checkpoint().expect("checkpoint");
    }
    drop(session);

    let disk_bytes = dir_file_size(&dir.0, "");
    let start = Instant::now();
    let mut restored = DurableSession::open(&dir.0, FsyncPolicy::Never).expect("restore");
    let restore_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = restored.recovery_report().expect("durable").clone();
    let verified = restored.rulebase().len() == rb.len()
        && restored.database().len() == db.len()
        && restored.ask(query).expect("restored query evaluates") == expected;
    RestoreRun {
        workload: workload.to_string(),
        params: params.to_string(),
        variant,
        restore_ms,
        records_replayed: report.records_replayed,
        disk_bytes,
        verified,
    }
}

/// A random 3-CNF SAT instance as a one-block QBF (the NP regime).
fn qbf_workload(
    vars: usize,
) -> (
    hdl_core::ast::Rulebase,
    hdl_base::Database,
    hdl_base::SymbolTable,
) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let clauses = (0..vars + 1)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let v = rng.gen_range(0..vars);
                    if rng.gen_bool(0.5) {
                        qp(v)
                    } else {
                        qn(v)
                    }
                })
                .collect()
        })
        .collect();
    let qbf = Qbf {
        prefix: vec![(Quant::Exists, (0..vars).collect())],
        clauses,
    };
    let enc = encode_qbf(&qbf).expect("encodable");
    (enc.rulebase, enc.database, enc.symbols)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = check || args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_persist.json".into());
    eprintln!(
        "persist benchmark — mode {}",
        if quick { "quick" } else { "full" }
    );

    // 1. WAL throughput.
    let mutations = if quick { 300 } else { 2000 };
    let wal_runs = [
        bench_wal(FsyncPolicy::Always, "always", mutations),
        bench_wal(FsyncPolicy::EveryN(64), "every_64", mutations),
        bench_wal(FsyncPolicy::Never, "never", mutations),
    ];
    for r in &wal_runs {
        eprintln!(
            "  wal {:>9}: {} mutations in {:.1} ms ({:.0}/s, {} bytes)",
            r.policy, r.mutations, r.wall_ms, r.per_sec, r.wal_bytes
        );
    }

    // 2. Checkpoint scaling with overlay depth.
    let (base_facts, frame_facts) = if quick { (200, 8) } else { (1000, 16) };
    let depths: &[usize] = if quick { &[0, 4, 16] } else { &[0, 4, 16, 64] };
    let ckpt_runs: Vec<CkptRun> = depths
        .iter()
        .map(|&d| bench_checkpoint(d, base_facts, frame_facts))
        .collect();
    for r in &ckpt_runs {
        eprintln!(
            "  ckpt depth {:>2}: write {:.2} ms, {} bytes, restore {:.2} ms",
            r.depth, r.checkpoint_ms, r.image_bytes, r.restore_ms
        );
    }

    // 3. Cold restores on real workloads, via WAL and via checkpoint.
    let ham_n = if quick { 7 } else { 10 };
    let g = random_digraph(ham_n, 0.35, 5);
    let (ham_rb, ham_db, ham_syms) = hamiltonian_reach_program(&g);
    let ham_params = format!("n={ham_n} density=0.35 seed=5 ({} edges)", g.edges.len());
    let qbf_vars = if quick { 3 } else { 4 };
    let (qbf_rb, qbf_db, qbf_syms) = qbf_workload(qbf_vars);
    let qbf_params = format!("3-CNF, {qbf_vars} vars, {} clauses", qbf_vars + 1);
    let mut restore_runs = Vec::new();
    for from_ckpt in [false, true] {
        restore_runs.push(bench_restore(
            "hamiltonian_reach",
            &ham_params,
            &ham_rb,
            &ham_db,
            &ham_syms,
            "?- yes.",
            from_ckpt,
        ));
        restore_runs.push(bench_restore(
            "qbf_sat",
            &qbf_params,
            &qbf_rb,
            &qbf_db,
            &qbf_syms,
            "?- sat.",
            from_ckpt,
        ));
    }
    for r in &restore_runs {
        eprintln!(
            "  restore {:>18} via {:>10}: {:.2} ms ({} records, {} bytes, verified {})",
            r.workload, r.variant, r.restore_ms, r.records_replayed, r.disk_bytes, r.verified
        );
    }

    // Emit the report.
    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"schema\": \"bench_persist/v1\",");
    let _ = writeln!(
        report,
        "  \"command\": \"cargo run --release -p hdl-bench --bin persist\","
    );
    let _ = writeln!(
        report,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(report, "  \"wal_throughput\": [");
    for (i, r) in wal_runs.iter().enumerate() {
        let _ = writeln!(
            report,
            "    {{\"policy\": \"{}\", \"mutations\": {}, \"wall_ms\": {:.3}, \"mutations_per_sec\": {:.0}, \"wal_bytes\": {}}}{}",
            r.policy, r.mutations, r.wall_ms, r.per_sec, r.wal_bytes,
            if i + 1 < wal_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(report, "  ],");
    let _ = writeln!(report, "  \"checkpoint_scaling\": [");
    for (i, r) in ckpt_runs.iter().enumerate() {
        let _ = writeln!(
            report,
            "    {{\"overlay_depth\": {}, \"base_facts\": {}, \"checkpoint_ms\": {:.3}, \"image_bytes\": {}, \"restore_ms\": {:.3}, \"records_replayed\": {}}}{}",
            r.depth, r.base_facts, r.checkpoint_ms, r.image_bytes, r.restore_ms, r.records_replayed,
            if i + 1 < ckpt_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(report, "  ],");
    let _ = writeln!(report, "  \"cold_restore\": [");
    for (i, r) in restore_runs.iter().enumerate() {
        let _ = writeln!(
            report,
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"variant\": \"{}\", \"restore_ms\": {:.3}, \"records_replayed\": {}, \"disk_bytes\": {}, \"verified\": {}}}{}",
            r.workload, r.params, r.variant, r.restore_ms, r.records_replayed, r.disk_bytes, r.verified,
            if i + 1 < restore_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(report, "  ]");
    report.push_str("}\n");
    std::fs::write(&out_path, &report).expect("write BENCH json");
    eprintln!("wrote {out_path}");

    if check {
        let mut failures = Vec::new();
        for r in &restore_runs {
            if !r.verified {
                failures.push(format!(
                    "{} via {} diverged after restore",
                    r.workload, r.variant
                ));
            }
            if r.variant == "checkpoint" && r.records_replayed != 0 {
                failures.push(format!(
                    "{} checkpoint restore replayed {} WAL records (want 0)",
                    r.workload, r.records_replayed
                ));
            }
        }
        for r in &ckpt_runs {
            if r.records_replayed != 0 {
                failures.push(format!(
                    "depth-{} checkpoint restore replayed {} WAL records (want 0)",
                    r.depth, r.records_replayed
                ));
            }
        }
        if wal_runs.iter().any(|r| r.wal_bytes == 0) {
            failures.push("a WAL run wrote no bytes".into());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("all persistence gates passed");
    }
}
