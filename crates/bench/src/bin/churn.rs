//! `churn` — the tracked retraction-maintenance benchmark behind
//! `BENCH_churn.json`.
//!
//! Replays one interleaved assert/retract/query script over a
//! transitive-closure workload through two arms:
//!
//! - **incremental**: a [`MaterializedModel`] maintained by DRed
//!   (overdelete + rederive) across the whole script — the path a
//!   session takes after `:materialize`.
//! - **rebuild**: the pre-maintenance behavior, a full
//!   [`BottomUpEngine::model`] fixpoint after every mutation.
//!
//! Both arms answer every query probe from their current model, and a
//! separate untimed pass checks the two models agree fact-for-fact
//! after every single mutation. The headline number is the speedup
//! (rebuild wall time / incremental wall time), gated at >= 5x under
//! `--check`.
//!
//! ```console
//! $ cargo run --release -p hdl-bench --bin churn            # full sizes
//! $ cargo run --release -p hdl-bench --bin churn -- --quick # CI sizes
//! $ cargo run --release -p hdl-bench --bin churn -- --check # quick + gates
//! ```

use hdl_base::{Database, GroundAtom, SymbolTable};
use hdl_bench::workloads::random_digraph;
use hdl_core::ast::Rulebase;
use hdl_core::engine::BottomUpEngine;
use hdl_core::{MaintenanceStats, MaterializedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// One step of the churn script.
enum Op {
    Assert(GroundAtom),
    Retract(GroundAtom),
    /// Membership probe against the current model (`tc(a, b)`?).
    Query(GroundAtom),
}

struct Workload {
    rulebase: Rulebase,
    database: Database,
    script: Vec<Op>,
}

/// Transitive closure over `communities` disjoint random digraphs of
/// `n` nodes each — the shape churn maintenance is for: a large model
/// where any single mutation's derivation cone is confined to one
/// community, while a full rebuild always pays for all of them.
/// `node(v)` anchor facts ensure edge churn can never remove a
/// constant's last base occurrence (which would — correctly — force a
/// domain rebuild and measure the guard instead of the maintenance).
fn build_workload(communities: usize, n: usize, density: f64, ops: usize, seed: u64) -> Workload {
    let graphs: Vec<_> = (0..communities)
        .map(|c| random_digraph(n, density, seed + c as u64))
        .collect();
    let mut src = String::from(
        "tc(X, Y) :- edge(X, Y).
         tc(X, Z) :- tc(X, Y), edge(Y, Z).\n",
    );
    for c in 0..communities {
        for v in 0..n {
            let _ = writeln!(src, "node(c{c}v{v}).");
        }
        for &(a, b) in &graphs[c].edges {
            let _ = writeln!(src, "edge(c{c}v{a}, c{c}v{b}).");
        }
    }
    let mut symbols = SymbolTable::new();
    let rulebase = hdl_core::parse_program(&src, &mut symbols).expect("workload parses");
    let (rulebase, facts) = hdl_core::split_facts(rulebase);
    let mut database = Database::new();
    for f in facts {
        database.insert(f);
    }

    // Script: a seeded walk over within-community node pairs. Present
    // edges get retracted, absent ones asserted, and every mutation is
    // followed by a handful of reachability probes.
    let edge = symbols.intern("edge");
    let tc = symbols.intern("tc");
    let nodes: Vec<Vec<_>> = (0..communities)
        .map(|c| {
            (0..n)
                .map(|v| symbols.intern(&format!("c{c}v{v}")))
                .collect()
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut present = Database::new();
    for (c, g) in graphs.iter().enumerate() {
        for &(a, b) in &g.edges {
            present.insert(GroundAtom::new(edge, vec![nodes[c][a], nodes[c][b]]));
        }
    }
    let mut script = Vec::with_capacity(ops * 4);
    for _ in 0..ops {
        let c = rng.gen_range(0..communities);
        let (a, b) = loop {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                break (a, b);
            }
        };
        let fact = GroundAtom::new(edge, vec![nodes[c][a], nodes[c][b]]);
        if present.contains(&fact) {
            present.remove(&fact);
            script.push(Op::Retract(fact));
        } else {
            present.insert(fact.clone());
            script.push(Op::Assert(fact));
        }
        for _ in 0..3 {
            let qc = rng.gen_range(0..communities);
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            script.push(Op::Query(GroundAtom::new(
                tc,
                vec![nodes[qc][x], nodes[qc][y]],
            )));
        }
    }
    Workload {
        rulebase,
        database,
        script,
    }
}

struct ArmResult {
    wall_ms: f64,
    queries_true: usize,
    final_model_facts: usize,
    stats: Option<MaintenanceStats>,
}

/// The maintained arm: build once, then DRed through the script.
fn run_incremental(w: &Workload) -> ArmResult {
    let mut db = w.database.clone();
    let start = Instant::now();
    let mut m = MaterializedModel::build(&w.rulebase, &db).expect("initial build");
    let mut queries_true = 0;
    for op in &w.script {
        match op {
            Op::Assert(f) => {
                db.insert(f.clone());
                m.assert_fact(&w.rulebase, &db, f).expect("assert");
            }
            Op::Retract(f) => {
                db.remove(f);
                m.retract_fact(&w.rulebase, &db, f).expect("retract");
            }
            Op::Query(f) => queries_true += usize::from(m.model().contains(f)),
        }
    }
    ArmResult {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        queries_true,
        final_model_facts: m.model().len(),
        stats: Some(m.stats()),
    }
}

/// The baseline arm: a full bottom-up fixpoint after every mutation.
fn run_rebuild(w: &Workload) -> ArmResult {
    let mut db = w.database.clone();
    let start = Instant::now();
    let mut model = BottomUpEngine::new(&w.rulebase, &db)
        .and_then(|mut e| e.model())
        .expect("initial build");
    let mut queries_true = 0;
    for op in &w.script {
        match op {
            Op::Assert(f) => {
                db.insert(f.clone());
                model = BottomUpEngine::new(&w.rulebase, &db)
                    .and_then(|mut e| e.model())
                    .expect("rebuild");
            }
            Op::Retract(f) => {
                db.remove(f);
                model = BottomUpEngine::new(&w.rulebase, &db)
                    .and_then(|mut e| e.model())
                    .expect("rebuild");
            }
            Op::Query(f) => queries_true += usize::from(model.contains(f)),
        }
    }
    ArmResult {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        queries_true,
        final_model_facts: model.len(),
        stats: None,
    }
}

/// Untimed lockstep replay: after every mutation the maintained model
/// must equal the from-scratch model fact-for-fact.
fn verify_lockstep(w: &Workload) -> Result<(), String> {
    let mut db = w.database.clone();
    let mut m = MaterializedModel::build(&w.rulebase, &db).map_err(|e| e.to_string())?;
    for (i, op) in w.script.iter().enumerate() {
        match op {
            Op::Assert(f) => {
                db.insert(f.clone());
                m.assert_fact(&w.rulebase, &db, f)
                    .map_err(|e| e.to_string())?;
            }
            Op::Retract(f) => {
                db.remove(f);
                m.retract_fact(&w.rulebase, &db, f)
                    .map_err(|e| e.to_string())?;
            }
            Op::Query(_) => continue,
        }
        let full = BottomUpEngine::new(&w.rulebase, &db)
            .and_then(|mut e| e.model())
            .map_err(|e| e.to_string())?;
        if full.len() != m.model().len() || full.iter_facts().any(|f| !m.model().contains(&f)) {
            return Err(format!(
                "model divergence after op {i}: maintained {} facts, full {}",
                m.model().len(),
                full.len()
            ));
        }
    }
    Ok(())
}

struct Run {
    communities: usize,
    nodes: usize,
    density: f64,
    mutations: usize,
    incremental: ArmResult,
    rebuild: ArmResult,
    speedup: f64,
    verified: bool,
}

fn run_config(
    communities: usize,
    n: usize,
    density: f64,
    ops: usize,
    seed: u64,
    verify: bool,
) -> Run {
    let w = build_workload(communities, n, density, ops, seed);
    let incremental = run_incremental(&w);
    let rebuild = run_rebuild(&w);
    assert_eq!(
        incremental.queries_true, rebuild.queries_true,
        "arms must answer the probe stream identically"
    );
    assert_eq!(incremental.final_model_facts, rebuild.final_model_facts);
    let verified = if verify {
        match verify_lockstep(&w) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("  VERIFY FAILED: {e}");
                false
            }
        }
    } else {
        true
    };
    Run {
        communities,
        nodes: n,
        density,
        mutations: ops,
        speedup: rebuild.wall_ms / incremental.wall_ms,
        incremental,
        rebuild,
        verified,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = check || args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_churn.json".into());
    eprintln!(
        "churn benchmark — mode {}",
        if quick { "quick" } else { "full" }
    );

    let configs: &[(usize, usize, f64, usize)] = if quick {
        &[(24, 10, 0.25, 40), (32, 8, 0.30, 50)]
    } else {
        &[(40, 12, 0.25, 120), (60, 10, 0.30, 160), (80, 8, 0.35, 200)]
    };
    let runs: Vec<Run> = configs
        .iter()
        .map(|&(k, n, d, ops)| run_config(k, n, d, ops, 17, true))
        .collect();
    for r in &runs {
        let stats = r.incremental.stats.expect("incremental arm tracks stats");
        eprintln!(
            "  {:>2}x{:>2} density={:.2} muts={:>3}: incremental {:>8.2} ms vs rebuild {:>8.2} ms — {:>5.1}x \
             (dred {} / conservative {} / domain {}, overdel {} rederived {}, verified {})",
            r.communities,
            r.nodes,
            r.density,
            r.mutations,
            r.incremental.wall_ms,
            r.rebuild.wall_ms,
            r.speedup,
            stats.incremental_retractions + stats.incremental_assertions,
            stats.conservative_updates,
            stats.domain_rebuilds,
            stats.overdeleted_facts,
            stats.rederived_facts,
            r.verified
        );
    }

    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"schema\": \"bench_churn/v1\",");
    let _ = writeln!(
        report,
        "  \"command\": \"cargo run --release -p hdl-bench --bin churn\","
    );
    let _ = writeln!(
        report,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(report, "  \"workload\": \"transitive closure over a random digraph; interleaved assert/retract with 3 reachability probes per mutation\",");
    let _ = writeln!(report, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let stats = r.incremental.stats.expect("stats");
        let _ = writeln!(
            report,
            "    {{\"communities\": {}, \"nodes_per_community\": {}, \"density\": {:.2}, \"mutations\": {}, \"model_facts\": {}, \
             \"incremental_ms\": {:.3}, \"rebuild_ms\": {:.3}, \"speedup\": {:.2}, \
             \"incremental_retractions\": {}, \"incremental_assertions\": {}, \
             \"conservative_updates\": {}, \"domain_rebuilds\": {}, \
             \"overdeleted_facts\": {}, \"rederived_facts\": {}, \"verified\": {}}}{}",
            r.communities,
            r.nodes,
            r.density,
            r.mutations,
            r.incremental.final_model_facts,
            r.incremental.wall_ms,
            r.rebuild.wall_ms,
            r.speedup,
            stats.incremental_retractions,
            stats.incremental_assertions,
            stats.conservative_updates,
            stats.domain_rebuilds,
            stats.overdeleted_facts,
            stats.rederived_facts,
            r.verified,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(report, "  ]");
    report.push_str("}\n");
    std::fs::write(&out_path, &report).expect("write BENCH json");
    eprintln!("wrote {out_path}");

    if check {
        let mut failures = Vec::new();
        for r in &runs {
            if !r.verified {
                failures.push(format!(
                    "{}x{}: maintained model diverged from full rebuild",
                    r.communities, r.nodes
                ));
            }
            if r.speedup < 5.0 {
                failures.push(format!(
                    "{}x{}: speedup {:.1}x below the 5x gate",
                    r.communities, r.nodes, r.speedup
                ));
            }
            let stats = r.incremental.stats.expect("stats");
            if stats.full_builds != 1 || stats.domain_rebuilds != 0 {
                failures.push(format!(
                    "{}x{}: expected 1 full build and 0 domain rebuilds, got {} / {}",
                    r.communities, r.nodes, stats.full_builds, stats.domain_rebuilds
                ));
            }
        }
        if failures.is_empty() {
            eprintln!("all gates passed");
        } else {
            for f in &failures {
                eprintln!("GATE FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
