//! Program generators: the paper's example rulebases parameterized by
//! size, plus synthetic layered rulebases for the Lemma 1 benchmark.

use crate::workloads::graphs::Digraph;
use hdl_base::{Database, GroundAtom, SymbolTable};
use hdl_core::ast::Rulebase;
use hdl_core::parser::{parse_program, split_facts};
use hdl_datalog::{Literal, Rule};
use std::fmt::Write as _;

/// Example 6 (parity): the EVEN/ODD rulebase over a unary relation `a`
/// with `n` tuples. Returns `(rules, database, symbols)`.
pub fn parity_program(n: usize) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::from(
        "even :- select(X), odd[add: b(X)].
         odd :- select(X), even[add: b(X)].
         even :- ~select(X).
         select(X) :- a(X), ~b(X).\n",
    );
    for i in 0..n {
        let _ = writeln!(src, "a(t{i}).");
    }
    build(&src)
}

/// Example 7 (Hamiltonian path) over `g`.
pub fn hamiltonian_program(g: &Digraph) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::from(
        "yes :- node(X), path(X)[add: pnode(X)].
         path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
         path(X) :- ~select(Y).
         select(Y) :- node(Y), ~pnode(Y).\n",
    );
    for v in 0..g.n {
        let _ = writeln!(src, "node(v{v}).");
    }
    for &(a, b) in &g.edges {
        let _ = writeln!(src, "edge(v{a}, v{b}).");
    }
    build(&src)
}

/// Example 7 (Hamiltonian path) over `g`, augmented with the standard
/// search-pruning relation: reachability through *unvisited* nodes.
///
/// ```text
/// free(Y)     :- node(Y), ~pnode(Y).
/// reach(X, Y) :- edge(X, Y), free(Y).
/// reach(X, Z) :- reach(X, Y), edge(Y, Z), free(Z).
/// ```
///
/// `free` depends on the hypothetically-added `pnode` facts, so the
/// recursive `reach` fixpoint is recomputed inside every augmented
/// database the search explores — unlike the plain Example 7 rulebase,
/// whose only recursion tunnels through the hypothetical premise and
/// therefore converges in one productive round per database. This is
/// the fixpoint-benchmark variant: it exercises semi-naive evaluation
/// under `add:` branching. The `yes` verdict is unchanged.
pub fn hamiltonian_reach_program(g: &Digraph) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::from(
        "yes :- node(X), path(X)[add: pnode(X)].
         path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
         path(X) :- ~select(Y).
         select(Y) :- node(Y), ~pnode(Y).
         free(Y) :- node(Y), ~pnode(Y).
         reach(X, Y) :- edge(X, Y), free(Y).
         reach(X, Z) :- reach(X, Y), edge(Y, Z), free(Z).\n",
    );
    for v in 0..g.n {
        let _ = writeln!(src, "node(v{v}).");
    }
    for &(a, b) in &g.edges {
        let _ = writeln!(src, "edge(v{a}, v{b}).");
    }
    build(&src)
}

/// `count` disjoint copies of the Example 7 Hamiltonian rulebase over
/// independently sampled random digraphs, every predicate suffixed
/// `_i`. The copies share no predicates or constants, so the queries
/// `?- yes_i.` are fully independent — the workload for the
/// `hdl-service` concurrent-throughput test, where disjointness means
/// workers cannot piggyback on each other's memo tables.
///
/// Returns the merged program plus `(query_text, expected)` pairs.
pub fn independent_hamiltonian_programs(
    count: usize,
    nodes: usize,
    density: f64,
    seed: u64,
) -> (Rulebase, Database, SymbolTable, Vec<(String, bool)>) {
    let mut src = String::new();
    let mut queries = Vec::new();
    for i in 0..count {
        let g = crate::workloads::random_digraph(nodes, density, seed + i as u64);
        let _ = writeln!(
            src,
            "yes_{i} :- node_{i}(X), path_{i}(X)[add: pnode_{i}(X)].
             path_{i}(X) :- select_{i}(Y), edge_{i}(X, Y), path_{i}(Y)[add: pnode_{i}(Y)].
             path_{i}(X) :- ~select_{i}(Y).
             select_{i}(Y) :- node_{i}(Y), ~pnode_{i}(Y)."
        );
        for v in 0..g.n {
            let _ = writeln!(src, "node_{i}(v{i}_{v}).");
        }
        for &(a, b) in &g.edges {
            let _ = writeln!(src, "edge_{i}(v{i}_{a}, v{i}_{b}).");
        }
        queries.push((format!("?- yes_{i}."), g.has_hamiltonian_path()));
    }
    let (rules, db, syms) = build(&src);
    (rules, db, syms, queries)
}

/// Example 4 (chained hypothetical adds) of length `n`: `a1` is provable
/// iff every `b_i` gets added along the chain.
pub fn chain_program(n: usize) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::new();
    for i in 1..=n {
        let _ = writeln!(src, "a{i} :- a{next}[add: b{i}].", next = i + 1);
    }
    let _ = writeln!(src, "a{} :- dgoal.", n + 1);
    let mut dgoal = String::from("dgoal :- ");
    for i in 1..=n {
        if i > 1 {
            dgoal.push_str(", ");
        }
        let _ = write!(dgoal, "b{i}");
    }
    let _ = writeln!(src, "{dgoal}.");
    build(&src)
}

/// A synthetic Example-9-style rulebase with `k` strata × `w` parallel
/// predicate families per stratum, for the Lemma 1 benchmark (E5).
///
/// Stratum `i`, family `j` contains:
/// ```text
/// a_i_j :- base_i_j, a_i_j[add: c_i_j].
/// a_i_j :- d_i_j, ~a_{i-1}_j.          (i > 1)
/// a_1_j :- d_1_j.
/// ```
pub fn layered_rulebase(k: usize, w: usize) -> (Rulebase, SymbolTable) {
    let mut src = String::new();
    for i in (1..=k).rev() {
        for j in 0..w {
            let _ = writeln!(src, "a_{i}_{j} :- base_{i}_{j}, a_{i}_{j}[add: c_{i}_{j}].");
            if i > 1 {
                let _ = writeln!(src, "a_{i}_{j} :- d_{i}_{j}, ~a_{prev}_{j}.", prev = i - 1);
            } else {
                let _ = writeln!(src, "a_1_{j} :- d_1_{j}.");
            }
        }
    }
    let mut syms = SymbolTable::new();
    let rb = parse_program(&src, &mut syms).expect("generated program parses");
    (rb, syms)
}

/// Plain transitive closure over `g` in the hypothetical-Datalog
/// language — the core fixpoint-benchmark workload. No hypotheticals
/// and no negation, so the measurement isolates the semi-naive delta
/// machinery and the argument-index joins.
pub fn tc_program(g: &Digraph) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::from(
        "tc(X, Y) :- edge(X, Y).
         tc(X, Z) :- tc(X, Y), edge(Y, Z).\n",
    );
    for &(a, b) in &g.edges {
        let _ = writeln!(src, "edge(v{a}, v{b}).");
    }
    build(&src)
}

/// Same-generation over a complete binary tree with `depth` levels.
///
/// Nodes are heap-indexed (`n1` is the root; `n_i` has children
/// `n_{2i}` and `n_{2i+1}`), giving `2^depth - 1` nodes. The model
/// contains every pair of distinct same-level nodes, so the fixpoint
/// runs `depth` rounds with deltas that widen geometrically — the
/// classic non-linear recursion workload for the fixpoint benchmark.
pub fn same_generation_program(depth: usize) -> (Rulebase, Database, SymbolTable) {
    let mut src = String::from(
        "sg(X, Y) :- sibling(X, Y).
         sg(X, Y) :- up(X, XP), sg(XP, YP), down(YP, Y).\n",
    );
    let nodes = (1usize << depth) - 1;
    for i in 1..=nodes {
        for c in [2 * i, 2 * i + 1] {
            if c <= nodes {
                let _ = writeln!(src, "up(n{c}, n{i}). down(n{i}, n{c}).");
            }
        }
        if 2 * i < nodes {
            let (a, b) = (2 * i, 2 * i + 1);
            let _ = writeln!(src, "sibling(n{a}, n{b}). sibling(n{b}, n{a}).");
        }
    }
    build(&src)
}

/// Transitive-closure rules for the plain-Datalog baseline (E10):
/// `tc(X,Y) :- e(X,Y).  tc(X,Z) :- e(X,Y), tc(Y,Z).`
pub fn tc_rules(syms: &mut SymbolTable) -> Vec<Rule> {
    use hdl_base::{Atom, Term, Var};
    let tc = syms.intern("tc");
    let e = syms.intern("e");
    let v = |i: u32| Term::Var(Var(i));
    vec![
        Rule::new(
            Atom::new(tc, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)]))],
        ),
        Rule::new(
            Atom::new(tc, vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(e, vec![v(0), v(1)])),
                Literal::Pos(Atom::new(tc, vec![v(1), v(2)])),
            ],
        ),
    ]
}

/// Edge facts for a chain of `n` nodes under predicate `e`.
pub fn tc_edb(syms: &mut SymbolTable, n: usize) -> Database {
    let e = syms.intern("e");
    let mut db = Database::new();
    let nodes: Vec<_> = (0..n).map(|i| syms.intern(&format!("v{i}"))).collect();
    for w in nodes.windows(2) {
        db.insert(GroundAtom::new(e, vec![w[0], w[1]]));
    }
    db
}

fn build(src: &str) -> (Rulebase, Database, SymbolTable) {
    let mut syms = SymbolTable::new();
    let program = parse_program(src, &mut syms).expect("generated program parses");
    let (rules, facts) = split_facts(program);
    (rules, facts.into_iter().collect(), syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_core::engine::TopDownEngine;
    use hdl_core::parser::parse_query;

    #[test]
    fn parity_program_is_correct_for_small_sizes() {
        for n in 0..5 {
            let (rb, db, mut syms) = parity_program(n);
            let q = parse_query("?- even.", &mut syms).unwrap();
            let mut eng = TopDownEngine::new(&rb, &db).unwrap();
            assert_eq!(eng.holds(&q).unwrap(), n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn hamiltonian_program_matches_direct_check() {
        let mut graphs = vec![Digraph::chain(4), Digraph::star(4)];
        for seed in 0..6 {
            graphs.push(crate::workloads::random_digraph(5, 0.4, seed));
        }
        let mut verdicts = std::collections::HashSet::new();
        for g in graphs {
            let expected = g.has_hamiltonian_path();
            verdicts.insert(expected);
            let (rb, db, mut syms) = hamiltonian_program(&g);
            let q = parse_query("?- yes.", &mut syms).unwrap();
            let mut eng = TopDownEngine::new(&rb, &db).unwrap();
            assert_eq!(eng.holds(&q).unwrap(), expected, "graph {g:?}");
        }
        assert_eq!(verdicts.len(), 2, "corpus covers both outcomes");
    }

    #[test]
    fn chain_program_proves_a1() {
        let (rb, db, mut syms) = chain_program(6);
        let q = parse_query("?- a1.", &mut syms).unwrap();
        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        assert!(eng.holds(&q).unwrap());
        let q3 = parse_query("?- a3.", &mut syms).unwrap();
        assert!(!eng.holds(&q3).unwrap(), "a3 alone misses b1, b2");
    }

    #[test]
    fn same_generation_model_counts_same_level_pairs() {
        use hdl_core::engine::BottomUpEngine;
        let depth = 4;
        let (rb, db, syms) = same_generation_program(depth);
        let sg = syms.lookup("sg").unwrap();
        let model = BottomUpEngine::new(&rb, &db).unwrap().model().unwrap();
        // Every ordered pair of distinct nodes on the same level:
        // sum over levels k of 2^k * (2^k - 1).
        let expected: usize = (0..depth).map(|k| (1 << k) * ((1 << k) - 1)).sum();
        assert_eq!(model.count(sg), expected);
    }

    #[test]
    fn tc_program_matches_pair_count_on_a_chain() {
        use hdl_core::engine::BottomUpEngine;
        let n = 12;
        let (rb, db, syms) = tc_program(&Digraph::chain(n));
        let tc = syms.lookup("tc").unwrap();
        let model = BottomUpEngine::new(&rb, &db).unwrap().model().unwrap();
        assert_eq!(model.count(tc), n * (n - 1) / 2);
    }

    #[test]
    fn layered_rulebase_has_k_strata() {
        for k in 1..=4 {
            let (rb, _) = layered_rulebase(k, 2);
            let ls = hdl_core::analysis::stratify::linear_stratification(&rb)
                .expect("layered rulebase is linearly stratified");
            assert_eq!(ls.num_strata(), k);
        }
    }
}
