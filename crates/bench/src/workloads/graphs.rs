//! Random directed graphs for the Hamiltonian-path experiments (E4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph on nodes `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digraph {
    /// Number of nodes.
    pub n: usize,
    /// Directed edges `(from, to)`, no self-loops, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl Digraph {
    /// Adjacency check.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a, b))
    }

    /// Exhaustive Hamiltonian-path check by DFS over permutations —
    /// the baseline comparator for the hypothetical rulebase (E4).
    pub fn has_hamiltonian_path(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut visited = vec![false; self.n];
        for start in 0..self.n {
            visited[start] = true;
            if self.extend_path(start, 1, &mut visited) {
                return true;
            }
            visited[start] = false;
        }
        false
    }

    fn extend_path(&self, last: usize, len: usize, visited: &mut [bool]) -> bool {
        if len == self.n {
            return true;
        }
        for &(a, b) in &self.edges {
            if a == last && !visited[b] {
                visited[b] = true;
                if self.extend_path(b, len + 1, visited) {
                    return true;
                }
                visited[b] = false;
            }
        }
        false
    }

    /// A directed chain `0 → 1 → … → n-1` (always Hamiltonian).
    pub fn chain(n: usize) -> Self {
        Digraph {
            n,
            edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
        }
    }

    /// A star with all edges out of node 0 (never Hamiltonian for n ≥ 3).
    pub fn star(n: usize) -> Self {
        Digraph {
            n,
            edges: (1..n).map(|i| (0, i)).collect(),
        }
    }
}

/// Samples a digraph where each ordered pair gets an edge with
/// probability `density`, deterministically from `seed`.
pub fn random_digraph(n: usize, density: f64, seed: u64) -> Digraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && rng.gen_bool(density) {
                edges.push((a, b));
            }
        }
    }
    Digraph { n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_hamiltonian_star_is_not() {
        assert!(Digraph::chain(5).has_hamiltonian_path());
        assert!(!Digraph::star(4).has_hamiltonian_path());
        assert!(Digraph::star(2).has_hamiltonian_path(), "0→1 covers both");
    }

    #[test]
    fn random_graphs_are_deterministic_per_seed() {
        let a = random_digraph(6, 0.4, 7);
        let b = random_digraph(6, 0.4, 7);
        assert_eq!(a, b);
        let c = random_digraph(6, 0.4, 8);
        assert!(a != c || a.edges.is_empty());
    }

    #[test]
    fn density_extremes() {
        assert!(random_digraph(5, 0.0, 1).edges.is_empty());
        let full = random_digraph(5, 1.0, 1);
        assert_eq!(full.edges.len(), 20);
        assert!(full.has_hamiltonian_path());
    }
}
