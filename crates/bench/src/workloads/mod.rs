//! Workload generators for the experiment benchmarks.

pub mod graphs;
pub mod rulebases;

pub use graphs::{random_digraph, Digraph};
pub use rulebases::{
    chain_program, hamiltonian_program, hamiltonian_reach_program,
    independent_hamiltonian_programs, layered_rulebase, parity_program, same_generation_program,
    tc_edb, tc_program, tc_rules,
};
