//! # hdl-bench
//!
//! Benchmark harness for the Bonner PODS '89 reproduction: workload
//! generators ([`workloads`]) plus one Criterion bench target per
//! experiment in `EXPERIMENTS.md` (see `benches/`).

#![warn(missing_docs)]

pub mod workloads;
