//! Acceptance checks for the overlay storage layer (see DESIGN.md,
//! "Storage layer"): on the hypothetical-search workloads the parent+delta
//! DAG must store strictly fewer fact-id slots (`delta_facts`) than
//! per-node full materialization would (`materialized_facts`). These are
//! the same workloads as `benches/bench_hamiltonian.rs` and
//! `benches/bench_qbf.rs`, shrunk to test-suite sizes.

use hdl_base::OverlayStats;
use hdl_bench::workloads::{hamiltonian_program, random_digraph};
use hdl_core::engine::TopDownEngine;
use hdl_core::parser::parse_query;
use hdl_encodings::qbf::build::{n, p};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};

fn assert_shares(o: OverlayStats) {
    assert!(
        o.nodes > 1,
        "the search should have extended the base database: {o:?}"
    );
    assert!(
        o.delta_facts < o.materialized_facts,
        "overlay storage must beat full materialization: {o:?}"
    );
}

#[test]
fn hamiltonian_search_stores_deltas_not_copies() {
    let graph = random_digraph(6, 0.4, 42);
    let expected = graph.has_hamiltonian_path();
    let (rules, db, mut syms) = hamiltonian_program(&graph);
    let query = parse_query("?- yes.", &mut syms).unwrap();
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    assert_eq!(eng.holds(&query).unwrap(), expected);
    assert_shares(eng.stats().overlay);
}

#[test]
fn qbf_search_stores_deltas_not_copies() {
    // A fixed Σ₂ᴾ instance: ∃x₀x₁ ∀x₂ over four 3-literal clauses.
    let qbf = Qbf {
        prefix: vec![(Quant::Exists, vec![0, 1]), (Quant::Forall, vec![2])],
        clauses: vec![
            vec![p(0), p(1), p(2)],
            vec![n(0), p(1), n(2)],
            vec![p(0), n(1), p(2)],
            vec![n(0), n(1), n(2)],
        ],
    };
    let expected = qbf.eval();
    let enc = encode_qbf(&qbf).unwrap();
    let mut eng = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
    assert_eq!(eng.holds(&enc.sat_query()).unwrap(), expected);
    assert_shares(eng.stats().overlay);
}
