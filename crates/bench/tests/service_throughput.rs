//! Concurrent-throughput acceptance checks for the `hdl-service` worker
//! pool (see DESIGN.md §3.9).
//!
//! The scaling workload is `independent_hamiltonian_programs`: disjoint
//! copies of the Example 7 rulebase, so no memoization or cache entry is
//! shared between queries and the work is embarrassingly parallel. The
//! ≥2× assertion only runs when the machine actually has ≥4 cores —
//! on smaller machines (CI runners, the 1-core dev container) the test
//! still exercises both pool sizes and checks answers, it just cannot
//! observe a speed-up that the hardware makes impossible.

use hdl_bench::workloads::independent_hamiltonian_programs;
use hdl_core::snapshot::Snapshot;
use hdl_service::{Outcome, QueryRequest, QueryService};
use std::sync::Arc;
use std::time::{Duration, Instant};

const COPIES: usize = 8;
const NODES: usize = 7;
const DENSITY: f64 = 0.4;
const SEED: u64 = 7;

fn workload() -> (Arc<Snapshot>, Vec<(String, bool)>) {
    let (rules, db, syms, queries) = independent_hamiltonian_programs(COPIES, NODES, DENSITY, SEED);
    (Snapshot::new(syms, rules, db), queries)
}

fn run_pool(snap: &Arc<Snapshot>, queries: &[(String, bool)], workers: usize) -> Duration {
    let service = QueryService::new(Arc::clone(snap), workers);
    let requests = queries
        .iter()
        .map(|(q, _)| QueryRequest::ask(q.clone()))
        .collect();
    let started = Instant::now();
    let outcomes = service.run_batch(requests);
    let elapsed = started.elapsed();
    for ((query, expected), outcome) in queries.iter().zip(&outcomes) {
        assert_eq!(
            *outcome,
            Outcome::from_verdict(Ok(*expected)),
            "{query} under {workers} workers"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.queries_served, queries.len() as u64);
    assert_eq!(stats.cache_hits, 0, "independent queries never share");
    service.shutdown();
    elapsed
}

#[test]
fn four_workers_scale_on_independent_queries() {
    let (snap, queries) = workload();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Warm-up pass so both measured runs see identical page-cache and
    // allocator conditions.
    run_pool(&snap, &queries, 1);
    let t1 = run_pool(&snap, &queries, 1);
    let t4 = run_pool(&snap, &queries, 4);
    eprintln!("independent batch: 1 worker {t1:?}, 4 workers {t4:?} ({cores} cores)");
    if cores >= 4 {
        assert!(
            t1 >= t4 * 2,
            "expected ≥2× throughput with 4 workers: 1w={t1:?} 4w={t4:?}"
        );
    } else {
        eprintln!("skipping ≥2× assertion: only {cores} core(s) available");
    }
}

#[test]
fn overlapping_queries_hit_the_shared_cache() {
    let (snap, queries) = workload();
    let service = QueryService::new(snap, 4);
    // First round populates the shared cache; the second round repeats
    // every goal twice and must be answered from it, regardless of
    // which worker computed the original answer.
    let round = |n: usize| -> Vec<QueryRequest> {
        std::iter::repeat_with(|| queries.iter().map(|(q, _)| QueryRequest::ask(q.clone())))
            .take(n)
            .flatten()
            .collect()
    };
    let check = |outcomes: Vec<Outcome>| {
        for (i, outcome) in outcomes.iter().enumerate() {
            let (query, expected) = &queries[i % queries.len()];
            assert_eq!(*outcome, Outcome::from_verdict(Ok(*expected)), "{query}");
        }
    };
    check(service.run_batch(round(1)));
    let warm = service.stats();
    check(service.run_batch(round(2)));
    let stats = service.stats();
    assert!(
        stats.cache_hits >= warm.cache_hits + 2 * queries.len() as u64,
        "every repeat must be served from the shared cache: {stats:?}"
    );
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        3 * queries.len() as u64
    );
    service.shutdown();
}
