//! # hdl-encodings
//!
//! The paper's constructions as executable compilers (Bonner PODS '89).
//!
//! - [`tm`] — §5.1: oracle-machine cascades → hypothetical rulebases
//!   (`R(L)`, `DB(s̄)`), the Theorem 1 lower bound;
//! - [`order`] — §6.2.1: hypothetical assertion of linear orders over
//!   unordered domains;
//! - [`counter`] — §6.2.2: ℓ-tuple counters (`n^ℓ` time/tape positions)
//!   as Horn rules over an asserted base order;
//! - [`bitmap`] — §6.2.2–6.2.3: bitmap images of databases on machine
//!   tapes (reproducing the paper's diagrams 1–3) and the unary-case
//!   `INITIALᶜ` rules;
//! - [`lemma2`] — the composed expressibility pipeline `R(ψ)` for generic
//!   queries over a unary relation;
//! - [`generic`] — Corollary 2's output rule, lifting yes/no queries to
//!   tuple-returning ones;
//! - [`qbf`] — quantified Boolean formulas compiled to stratified
//!   rulebases: the `Σₖᴾ`-complete problem family in the Example 6–7
//!   idiom, without the Turing-machine apparatus.

#![warn(missing_docs)]

pub mod bitmap;
pub mod counter;
pub mod generic;
pub mod lemma2;
pub mod order;
pub mod qbf;
pub mod tm;
