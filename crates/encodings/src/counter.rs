//! §6.2.2: ℓ-tuple counters over a base linear order.
//!
//! A linear order `first1/next1/last1` on an `n`-element domain counts to
//! `n`; ℓ-tuples under lexicographic order count to `n^ℓ`. This module
//! emits the Horn rules defining `first/next/last` (of arities ℓ, 2ℓ, ℓ)
//! from the base order, via intermediate predicates `first_k/next_k/
//! last_k` for `k = 1..ℓ`:
//!
//! ```text
//! first_k(X̄, X)      :- first_{k-1}(X̄), first1(X).
//! last_k(X̄, X)       :- last_{k-1}(X̄), last1(X).
//! next_k(X̄, X, X̄, Y) :- dom(X̄), next1(X, Y).            % low digit steps
//! next_k(X̄, X, Ȳ, Y) :- next_{k-1}(X̄, Ȳ), last1(X), first1(Y). % carry
//! ```
//!
//! The most significant digit comes first, so `next` steps the final
//! coordinate and carries leftward — exactly a base-`n` odometer.

use hdl_base::{Atom, Symbol, SymbolTable, Term, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};

/// Names for one counter level.
#[derive(Clone, Copy, Debug)]
pub struct CounterNames {
    /// Base order (unary/binary/unary).
    pub first1: Symbol,
    /// Base successor.
    pub next1: Symbol,
    /// Base maximum.
    pub last1: Symbol,
    /// Domain predicate (unary) for the untouched high digits.
    pub domain: Symbol,
}

/// Emits rules defining `first/next/last` over ℓ-tuples into `rb`, using
/// the final names `first`, `next`, `last` (arities ℓ, 2ℓ, ℓ).
///
/// For `ℓ = 1` the output is three alias rules.
pub fn counter_rules(syms: &mut SymbolTable, names: &CounterNames, l: usize, rb: &mut Rulebase) {
    assert!(l >= 1, "counter width must be positive");
    let level_name = |syms: &mut SymbolTable, what: &str, k: usize| -> Symbol {
        if k == l {
            syms.intern(what)
        } else {
            syms.intern(&format!("{what}_lv{k}"))
        }
    };

    // Level 1: aliases to the base order.
    {
        let f = level_name(syms, "first", 1);
        let n = level_name(syms, "next", 1);
        let la = level_name(syms, "last", 1);
        let (x, y) = (Var(0), Var(1));
        rb.push(HypRule::new(
            Atom::new(f, vec![x.into()]),
            vec![Premise::Atom(Atom::new(names.first1, vec![x.into()]))],
        ));
        rb.push(HypRule::new(
            Atom::new(n, vec![x.into(), y.into()]),
            vec![Premise::Atom(Atom::new(
                names.next1,
                vec![x.into(), y.into()],
            ))],
        ));
        rb.push(HypRule::new(
            Atom::new(la, vec![x.into()]),
            vec![Premise::Atom(Atom::new(names.last1, vec![x.into()]))],
        ));
    }

    for k in 2..=l {
        let f_k = level_name(syms, "first", k);
        let f_prev = level_name(syms, "first", k - 1);
        let n_k = level_name(syms, "next", k);
        let n_prev = level_name(syms, "next", k - 1);
        let la_k = level_name(syms, "last", k);
        let la_prev = level_name(syms, "last", k - 1);

        // Variable layout: X̄ = 0..k-1 (high digits), low digit X = k-1;
        // target Ȳ similar, offset by k.
        let hi = |base: u32| -> Vec<Term> {
            (0..k as u32 - 1)
                .map(|i| Term::Var(Var(base + i)))
                .collect()
        };
        let lo = |base: u32| Term::Var(Var(base + k as u32 - 1));

        // first_k(X̄, X) :- first_{k-1}(X̄), first1(X).
        {
            let xs = hi(0);
            let x = lo(0);
            let mut argv = xs.clone();
            argv.push(x);
            rb.push(HypRule::new(
                Atom::new(f_k, argv),
                vec![
                    Premise::Atom(Atom::new(f_prev, xs)),
                    Premise::Atom(Atom::new(names.first1, vec![x])),
                ],
            ));
        }
        // last_k(X̄, X) :- last_{k-1}(X̄), last1(X).
        {
            let xs = hi(0);
            let x = lo(0);
            let mut argv = xs.clone();
            argv.push(x);
            rb.push(HypRule::new(
                Atom::new(la_k, argv),
                vec![
                    Premise::Atom(Atom::new(la_prev, xs)),
                    Premise::Atom(Atom::new(names.last1, vec![x])),
                ],
            ));
        }
        // next_k(X̄,X, X̄,Y) :- d(X₁),…,d(Xₖ₋₁), next1(X, Y).
        {
            let xs = hi(0);
            let x = lo(0);
            let y = Term::Var(Var(k as u32)); // one extra var after the block
            let mut argv = xs.clone();
            argv.push(x);
            argv.extend(xs.iter().copied());
            argv.push(y);
            let mut premises: Vec<Premise> = xs
                .iter()
                .map(|&t| Premise::Atom(Atom::new(names.domain, vec![t])))
                .collect();
            premises.push(Premise::Atom(Atom::new(names.next1, vec![x, y])));
            rb.push(HypRule::new(Atom::new(n_k, argv), premises));
        }
        // next_k(X̄,X, Ȳ,Y) :- next_{k-1}(X̄, Ȳ), last1(X), first1(Y).
        {
            let xs = hi(0);
            let x = lo(0);
            let ys = hi(k as u32);
            let y = lo(k as u32);
            let mut argv = xs.clone();
            argv.push(x);
            argv.extend(ys.iter().copied());
            argv.push(y);
            let mut nk_args = xs.clone();
            nk_args.extend(ys.iter().copied());
            rb.push(HypRule::new(
                Atom::new(n_k, argv),
                vec![
                    Premise::Atom(Atom::new(n_prev, nk_args)),
                    Premise::Atom(Atom::new(names.last1, vec![x])),
                    Premise::Atom(Atom::new(names.first1, vec![y])),
                ],
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::{Database, GroundAtom};
    use hdl_core::engine::BottomUpEngine;

    /// Materializes a base order a0 < a1 < … < a_{n-1} as facts and
    /// returns the counter tuples derivable from it.
    fn counter_model(n: usize, l: usize) -> (Vec<Vec<usize>>, usize) {
        let mut syms = SymbolTable::new();
        let first1 = syms.intern("first1");
        let next1 = syms.intern("next1");
        let last1 = syms.intern("last1");
        let domain = syms.intern("d");
        let names = CounterNames {
            first1,
            next1,
            last1,
            domain,
        };
        let mut rb = Rulebase::new();
        counter_rules(&mut syms, &names, l, &mut rb);

        let consts: Vec<_> = (0..n).map(|i| syms.intern(&format!("a{i}"))).collect();
        let mut db = Database::new();
        db.insert(GroundAtom::new(first1, vec![consts[0]]));
        db.insert(GroundAtom::new(last1, vec![consts[n - 1]]));
        for w in consts.windows(2) {
            db.insert(GroundAtom::new(next1, vec![w[0], w[1]]));
        }
        for &c in &consts {
            db.insert(GroundAtom::new(domain, vec![c]));
        }

        let mut eng = BottomUpEngine::new(&rb, &db).unwrap();
        let model = eng.model().unwrap();
        let next = syms.lookup("next").unwrap();
        let index = |s: hdl_base::Symbol| consts.iter().position(|&c| c == s).unwrap();
        let mut steps: Vec<Vec<usize>> = model
            .tuples(next)
            .map(|t| t.iter().map(|&s| index(s)).collect())
            .collect();
        steps.sort();
        // Count of next edges should be n^l - 1 for a complete counter.
        let first = syms.lookup("first").unwrap();
        let firsts = model.count(first);
        (steps, firsts)
    }

    /// Decodes an ℓ-tuple of digit indices as a number (big-endian).
    fn decode(digits: &[usize], n: usize) -> usize {
        digits.iter().fold(0, |acc, &d| acc * n + d)
    }

    #[test]
    fn l1_counter_is_the_base_order() {
        let (steps, firsts) = counter_model(4, 1);
        assert_eq!(firsts, 1);
        assert_eq!(steps.len(), 3);
        for s in &steps {
            assert_eq!(s[1], s[0] + 1);
        }
    }

    #[test]
    fn l2_counter_counts_to_n_squared() {
        let n = 3;
        let (steps, firsts) = counter_model(n, 2);
        assert_eq!(firsts, 1);
        assert_eq!(steps.len(), n * n - 1, "n² − 1 successor edges");
        for s in &steps {
            let from = decode(&s[0..2], n);
            let to = decode(&s[2..4], n);
            assert_eq!(to, from + 1, "lexicographic successor: {s:?}");
        }
    }

    #[test]
    fn l3_counter_counts_to_n_cubed() {
        let n = 2;
        let (steps, _) = counter_model(n, 3);
        assert_eq!(steps.len(), n * n * n - 1);
        for s in &steps {
            assert_eq!(decode(&s[3..6], n), decode(&s[0..3], n) + 1);
        }
    }

    #[test]
    fn counter_rules_are_plain_horn() {
        let mut syms = SymbolTable::new();
        let names = CounterNames {
            first1: syms.intern("first1"),
            next1: syms.intern("next1"),
            last1: syms.intern("last1"),
            domain: syms.intern("d"),
        };
        let mut rb = Rulebase::new();
        counter_rules(&mut syms, &names, 3, &mut rb);
        for r in rb.iter() {
            for p in &r.premises {
                assert!(!p.is_hypothetical() && !p.is_negative());
            }
        }
        assert!(rb.is_constant_free());
    }
}
