//! §6.2.1: hypothetically asserting a linear order on an unordered domain.
//!
//! Other expressibility results assume the data domain is linearly
//! ordered; the paper's trick is to *assert* every possible order
//! hypothetically and rely on genericity for order-independence. The
//! rules below are the paper's, with `first1/next1/last1` the asserted
//! base order over the domain predicate `d`:
//!
//! ```text
//! yes      :- select(X), order(X)[add: first1(X)].
//! order(X) :- select(Y), order(Y)[add: next1(X, Y)].
//! order(X) :- ~select(Y), goal[add: last1(X)].
//! select(Y) :- d(Y), ~selected(Y).
//! selected(Y) :- first1(Y).
//! selected(Y) :- next1(X, Y).
//! ```
//!
//! When the elements are picked in the order `a₁ … aₙ`, the hypothetical
//! context in which `goal` is attempted contains exactly
//! `first1(a₁), next1(a₁,a₂), …, last1(aₙ)`. Every permutation is tried;
//! `yes` holds iff `goal` holds under *some* (equivalently, for generic
//! goals, under *every*) order.

use hdl_base::{Atom, Symbol, SymbolTable, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};

/// The predicate names used by an order assertion.
#[derive(Clone, Copy, Debug)]
pub struct OrderNames {
    /// Entry point: provable iff `goal` holds under some asserted order.
    pub yes: Symbol,
    /// The domain predicate (unary, EDB).
    pub domain: Symbol,
    /// The goal attempted once the order is complete (0-ary).
    pub goal: Symbol,
    /// `first1` (unary), hypothetically added.
    pub first1: Symbol,
    /// `next1` (binary), hypothetically added.
    pub next1: Symbol,
    /// `last1` (unary), hypothetically added.
    pub last1: Symbol,
    /// Internal: `order` (unary).
    pub order: Symbol,
    /// Internal: `select` (unary).
    pub select: Symbol,
    /// Internal: `selected` (unary).
    pub selected: Symbol,
}

impl OrderNames {
    /// Interns the standard names, with `domain` and `goal` supplied.
    pub fn standard(syms: &mut SymbolTable, domain: Symbol, goal: Symbol) -> Self {
        OrderNames {
            yes: syms.intern("yes"),
            domain,
            goal,
            first1: syms.intern("first1"),
            next1: syms.intern("next1"),
            last1: syms.intern("last1"),
            order: syms.intern("order"),
            select: syms.intern("select"),
            selected: syms.intern("selected"),
        }
    }
}

/// Emits the six order-assertion rules into `rb`.
pub fn order_assertion_rules(names: &OrderNames, rb: &mut Rulebase) {
    let (x, y) = (Var(0), Var(1));
    // yes :- select(X), order(X)[add: first1(X)].
    rb.push(HypRule::new(
        Atom::new(names.yes, vec![]),
        vec![
            Premise::Atom(Atom::new(names.select, vec![x.into()])),
            Premise::Hyp {
                goal: Atom::new(names.order, vec![x.into()]),
                adds: vec![Atom::new(names.first1, vec![x.into()])],
                dels: Vec::new(),
            },
        ],
    ));
    // order(X) :- select(Y), order(Y)[add: next1(X, Y)].
    rb.push(HypRule::new(
        Atom::new(names.order, vec![x.into()]),
        vec![
            Premise::Atom(Atom::new(names.select, vec![y.into()])),
            Premise::Hyp {
                goal: Atom::new(names.order, vec![y.into()]),
                adds: vec![Atom::new(names.next1, vec![x.into(), y.into()])],
                dels: Vec::new(),
            },
        ],
    ));
    // order(X) :- ~select(Y), goal[add: last1(X)].
    rb.push(HypRule::new(
        Atom::new(names.order, vec![x.into()]),
        vec![
            Premise::Neg(Atom::new(names.select, vec![y.into()])),
            Premise::Hyp {
                goal: Atom::new(names.goal, vec![]),
                adds: vec![Atom::new(names.last1, vec![x.into()])],
                dels: Vec::new(),
            },
        ],
    ));
    // select(Y) :- d(Y), ~selected(Y).
    rb.push(HypRule::new(
        Atom::new(names.select, vec![y.into()]),
        vec![
            Premise::Atom(Atom::new(names.domain, vec![y.into()])),
            Premise::Neg(Atom::new(names.selected, vec![y.into()])),
        ],
    ));
    // selected(Y) :- first1(Y).    selected(Y) :- next1(X, Y).
    rb.push(HypRule::new(
        Atom::new(names.selected, vec![y.into()]),
        vec![Premise::Atom(Atom::new(names.first1, vec![y.into()]))],
    ));
    rb.push(HypRule::new(
        Atom::new(names.selected, vec![y.into()]),
        vec![Premise::Atom(Atom::new(
            names.next1,
            vec![x.into(), y.into()],
        ))],
    ));
}

/// Builds a rulebase holding *only* the order-assertion rules plus a
/// trivial `goal :- check.` hook, for tests that want to observe the
/// asserted orders directly.
pub fn standalone(syms: &mut SymbolTable) -> (Rulebase, OrderNames) {
    let domain = syms.intern("d");
    let goal = syms.intern("goal");
    let names = OrderNames::standard(syms, domain, goal);
    let mut rb = Rulebase::new();
    order_assertion_rules(&names, &mut rb);
    (rb, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::{Database, GroundAtom};
    use hdl_core::engine::TopDownEngine;
    use hdl_core::parser::parse_program;

    /// `goal` succeeds iff the asserted order lists every element:
    /// check that `yes` holds whenever the goal accepts any full order.
    #[test]
    fn asserts_a_complete_order() {
        let mut syms = SymbolTable::new();
        let (mut rb, names) = standalone(&mut syms);
        // goal :- last1(X), chainlen check via walk: here simply require
        // first1 and last1 to exist and every domain element selected.
        // goal :- first1(X), last1(Y).
        let extra = parse_program("goal :- first1(X), last1(Y).", &mut syms).unwrap();
        for r in extra.rules {
            rb.push(r);
        }
        let mut db = Database::new();
        for name in ["a", "b", "c"] {
            let c = syms.intern(name);
            db.insert(GroundAtom::new(names.domain, vec![c]));
        }
        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        let yes = Premise::Atom(Atom::new(names.yes, vec![]));
        assert!(eng.holds(&yes).unwrap());
    }

    /// With a goal that demands a specific chain length, `yes` holds only
    /// if the order really contains all n elements exactly once.
    #[test]
    fn order_has_exactly_n_elements() {
        let mut syms = SymbolTable::new();
        let (mut rb, names) = standalone(&mut syms);
        // reach2 walks two next1 steps from the first element to the last:
        // only a 3-element chain a<b<c satisfies it.
        let extra = parse_program(
            "goal :- first1(X), next1(X, Y), next1(Y, Z), last1(Z).",
            &mut syms,
        )
        .unwrap();
        for r in extra.rules {
            rb.push(r);
        }
        let mut db = Database::new();
        for name in ["a", "b", "c"] {
            let c = syms.intern(name);
            db.insert(GroundAtom::new(names.domain, vec![c]));
        }
        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        let yes = Premise::Atom(Atom::new(names.yes, vec![]));
        assert!(eng.holds(&yes).unwrap(), "3 elements → chain of length 3");

        // With 4 elements the 2-step chain cannot span first..last.
        let mut db4 = db.clone();
        let d4 = syms.intern("dd");
        db4.insert(GroundAtom::new(names.domain, vec![d4]));
        let mut eng4 = TopDownEngine::new(&rb, &db4).unwrap();
        assert!(!eng4.holds(&yes).unwrap(), "4 elements → chain too long");
    }

    #[test]
    fn empty_domain_asserts_nothing() {
        let mut syms = SymbolTable::new();
        let (mut rb, names) = standalone(&mut syms);
        let extra = parse_program("goal :- first1(X).", &mut syms).unwrap();
        for r in extra.rules {
            rb.push(r);
        }
        let db = Database::new();
        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        let yes = Premise::Atom(Atom::new(names.yes, vec![]));
        assert!(!eng.holds(&yes).unwrap());
    }

    #[test]
    fn rules_are_constant_free_and_linearly_stratified() {
        let mut syms = SymbolTable::new();
        let (rb, _) = standalone(&mut syms);
        assert!(rb.is_constant_free());
        // `goal` has no definition here, so order/select/yes stratify.
        hdl_core::analysis::stratify::linear_stratification(&rb)
            .expect("order rules are linearly stratified");
    }
}
