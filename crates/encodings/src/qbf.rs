//! Quantified Boolean formulas as stratified hypothetical rulebases.
//!
//! QBF with `k` quantifier alternations (outermost ∃) is the canonical
//! `Σₖᴾ`-complete problem family. This module compiles such formulas
//! into hypothetical rulebases in the style of the paper's Examples 6–7
//! — *without* the Turing-machine apparatus — making Theorem 1's
//! syntax/complexity correspondence directly visible: a `k`-block QBF
//! becomes a rulebase whose linear stratification has exactly one
//! stratum per block.
//!
//! ## Encoding
//!
//! Per block `i` (outermost first), an ∃-block guesses an assignment of
//! its variables one at a time, recording it by hypothetical insertion —
//! the paper's select-and-record idiom:
//!
//! ```text
//! sat_i :- go_i.
//! go_i  :- sel_i(X), go_i[add: tv_true(X),  assigned(X)].
//! go_i  :- sel_i(X), go_i[add: tv_false(X), assigned(X)].
//! go_i  :- ~sel_i(X), sat_{i+1}.
//! sel_i(X) :- blockvar_i(X), ~assigned(X).
//! ```
//!
//! A ∀-block uses `∀Ȳψ ≡ ¬∃Ȳ¬ψ`: it *searches for a violation* and
//! negates the result — negation-as-failure supplying exactly the
//! stratum boundary Theorem 1 needs:
//!
//! ```text
//! sat_i  :- ~viol_i.
//! viol_i :- vgo_i.
//! vgo_i  :- sel_i(X), vgo_i[add: tv_true(X),  assigned(X)].
//! vgo_i  :- sel_i(X), vgo_i[add: tv_false(X), assigned(X)].
//! vgo_i  :- ~sel_i(X), ~sat_{i+1}.
//! ```
//!
//! The innermost level checks the CNF matrix against the accumulated
//! `tv_*` facts:
//!
//! ```text
//! sat_{k+1} :- ~unsupported.
//! unsupported :- clause(C), ~supported(C).
//! supported(C) :- pos(C, X), tv_true(X).
//! supported(C) :- neg(C, X), tv_false(X).
//! ```
//!
//! All recursion is linear, so the rulebase is linearly stratified and
//! the `PROVE` procedures apply; tests cross-check all three engines
//! against the direct QBF evaluator below.

use hdl_base::{Atom, Database, GroundAtom, Symbol, SymbolTable, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};

/// A propositional variable (index into the formula's variable space).
pub type BoolVar = usize;

/// A literal: variable plus polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lit {
    /// The variable.
    pub var: BoolVar,
    /// `true` for the positive literal.
    pub positive: bool,
}

/// Quantifier of a block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quant {
    /// Existential block.
    Exists,
    /// Universal block.
    Forall,
}

/// A prenex-CNF quantified Boolean formula.
#[derive(Clone, Debug)]
pub struct Qbf {
    /// Quantifier prefix, outermost block first. Every variable must
    /// appear in exactly one block.
    pub prefix: Vec<(Quant, Vec<BoolVar>)>,
    /// CNF matrix: a conjunction of clauses, each a disjunction of
    /// literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Qbf {
    /// All variables of the prefix, for validation.
    fn prefix_vars(&self) -> Vec<BoolVar> {
        let mut v: Vec<BoolVar> = self
            .prefix
            .iter()
            .flat_map(|(_, vars)| vars.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Checks well-formedness: nonempty blocks, no repeated or free
    /// variables.
    pub fn validate(&self) -> Result<(), String> {
        if self.prefix.iter().any(|(_, vars)| vars.is_empty()) {
            return Err("empty quantifier block".into());
        }
        let vars = self.prefix_vars();
        if vars.windows(2).any(|w| w[0] == w[1]) {
            return Err("variable quantified twice".into());
        }
        for clause in &self.clauses {
            for lit in clause {
                if !vars.contains(&lit.var) {
                    return Err(format!("free variable {} in matrix", lit.var));
                }
            }
        }
        Ok(())
    }

    /// Direct semantic evaluation — the substrate baseline the encoding
    /// is checked against (exponential backtracking over blocks).
    pub fn eval(&self) -> bool {
        let max_var = self.prefix_vars().last().copied().map_or(0, |v| v + 1);
        let mut assignment = vec![None; max_var];
        self.eval_blocks(0, &mut assignment)
    }

    fn eval_blocks(&self, block: usize, assignment: &mut Vec<Option<bool>>) -> bool {
        let Some((quant, vars)) = self.prefix.get(block) else {
            return self.matrix_true(assignment);
        };
        let combos = 1usize << vars.len();
        match quant {
            Quant::Exists => (0..combos).any(|mask| {
                for (i, &v) in vars.iter().enumerate() {
                    assignment[v] = Some(mask & (1 << i) != 0);
                }
                let r = self.eval_blocks(block + 1, assignment);
                for &v in vars {
                    assignment[v] = None;
                }
                r
            }),
            Quant::Forall => (0..combos).all(|mask| {
                for (i, &v) in vars.iter().enumerate() {
                    assignment[v] = Some(mask & (1 << i) != 0);
                }
                let r = self.eval_blocks(block + 1, assignment);
                for &v in vars {
                    assignment[v] = None;
                }
                r
            }),
        }
    }

    fn matrix_true(&self, assignment: &[Option<bool>]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var].expect("prefix covers all vars") == lit.positive)
        })
    }
}

/// The compiled rulebase and its interface.
pub struct QbfEncoding {
    /// The rulebase.
    pub rulebase: Rulebase,
    /// EDB: block membership, clause structure.
    pub database: Database,
    /// Symbol names.
    pub symbols: SymbolTable,
    /// The 0-ary `sat_1` query predicate.
    pub sat: Symbol,
}

impl QbfEncoding {
    /// The query `?- sat_1.`
    pub fn sat_query(&self) -> Premise {
        Premise::Atom(Atom::new(self.sat, vec![]))
    }
}

/// Compiles `qbf` into a hypothetical rulebase (see module docs).
pub fn encode_qbf(qbf: &Qbf) -> Result<QbfEncoding, String> {
    qbf.validate()?;
    let mut syms = SymbolTable::new();
    let mut rb = Rulebase::new();
    let mut db = Database::new();

    let tv_true = syms.intern("tv_true");
    let tv_false = syms.intern("tv_false");
    let assigned = syms.intern("assigned");
    let clause_p = syms.intern("clause");
    let pos_p = syms.intern("pos");
    let neg_p = syms.intern("neg");
    let supported = syms.intern("supported");
    let unsupported = syms.intern("unsupported");

    // EDB: variables and clause structure.
    let var_const: Vec<Symbol> = qbf
        .prefix_vars()
        .iter()
        .map(|v| syms.intern(&format!("x{v}")))
        .collect();
    let var_sym = |v: BoolVar, syms: &mut SymbolTable| syms.intern(&format!("x{v}"));
    let _ = var_const;
    for (i, (_, vars)) in qbf.prefix.iter().enumerate() {
        let blockvar = syms.intern(&format!("blockvar_{}", i + 1));
        for &v in vars {
            let c = var_sym(v, &mut syms);
            db.insert(GroundAtom::new(blockvar, vec![c]));
        }
    }
    for (ci, clause) in qbf.clauses.iter().enumerate() {
        let c = syms.intern(&format!("c{ci}"));
        db.insert(GroundAtom::new(clause_p, vec![c]));
        for lit in clause {
            let x = var_sym(lit.var, &mut syms);
            let pred = if lit.positive { pos_p } else { neg_p };
            db.insert(GroundAtom::new(pred, vec![c, x]));
        }
    }

    // Matrix level: sat_{k+1}.
    let k = qbf.prefix.len();
    let sat_matrix = syms.intern(&format!("sat_{}", k + 1));
    let (x, c) = (Var(0), Var(1));
    // supported(C) :- pos(C, X), tv_true(X).   (and the negative twin)
    for (pred, tv) in [(pos_p, tv_true), (neg_p, tv_false)] {
        rb.push(HypRule::new(
            Atom::new(supported, vec![c.into()]),
            vec![
                Premise::Atom(Atom::new(pred, vec![c.into(), x.into()])),
                Premise::Atom(Atom::new(tv, vec![x.into()])),
            ],
        ));
    }
    // unsupported :- clause(C), ~supported(C).
    rb.push(HypRule::new(
        Atom::new(unsupported, vec![]),
        vec![
            Premise::Atom(Atom::new(clause_p, vec![c.into()])),
            Premise::Neg(Atom::new(supported, vec![c.into()])),
        ],
    ));
    // sat_{k+1} :- ~unsupported.
    rb.push(HypRule::new(
        Atom::new(sat_matrix, vec![]),
        vec![Premise::Neg(Atom::new(unsupported, vec![]))],
    ));

    // Blocks, innermost-last: emit from innermost (k) to outermost (1).
    for i in (1..=k).rev() {
        let (quant, _) = qbf.prefix[i - 1];
        let sat_i = syms.intern(&format!("sat_{i}"));
        let sat_next = syms.intern(&format!("sat_{}", i + 1));
        let sel = syms.intern(&format!("sel_{i}"));
        let blockvar = syms.intern(&format!("blockvar_{i}"));
        // sel_i(X) :- blockvar_i(X), ~assigned(X).
        rb.push(HypRule::new(
            Atom::new(sel, vec![x.into()]),
            vec![
                Premise::Atom(Atom::new(blockvar, vec![x.into()])),
                Premise::Neg(Atom::new(assigned, vec![x.into()])),
            ],
        ));
        let walker = |name: &str, syms: &mut SymbolTable| syms.intern(name);
        match quant {
            Quant::Exists => {
                let go = walker(&format!("go_{i}"), &mut syms);
                emit_walk(&mut rb, go, sel, tv_true, tv_false, assigned, x);
                // go_i :- ~sel_i(X), sat_{i+1}.
                rb.push(HypRule::new(
                    Atom::new(go, vec![]),
                    vec![
                        Premise::Neg(Atom::new(sel, vec![x.into()])),
                        Premise::Atom(Atom::new(sat_next, vec![])),
                    ],
                ));
                // sat_i :- go_i.
                rb.push(HypRule::new(
                    Atom::new(sat_i, vec![]),
                    vec![Premise::Atom(Atom::new(go, vec![]))],
                ));
            }
            Quant::Forall => {
                let viol = walker(&format!("viol_{i}"), &mut syms);
                let vgo = walker(&format!("vgo_{i}"), &mut syms);
                emit_walk(&mut rb, vgo, sel, tv_true, tv_false, assigned, x);
                // vgo_i :- ~sel_i(X), ~sat_{i+1}.
                rb.push(HypRule::new(
                    Atom::new(vgo, vec![]),
                    vec![
                        Premise::Neg(Atom::new(sel, vec![x.into()])),
                        Premise::Neg(Atom::new(sat_next, vec![])),
                    ],
                ));
                // viol_i :- vgo_i.     sat_i :- ~viol_i.
                rb.push(HypRule::new(
                    Atom::new(viol, vec![]),
                    vec![Premise::Atom(Atom::new(vgo, vec![]))],
                ));
                rb.push(HypRule::new(
                    Atom::new(sat_i, vec![]),
                    vec![Premise::Neg(Atom::new(viol, vec![]))],
                ));
            }
        }
    }

    let sat = syms.intern("sat_1");
    Ok(QbfEncoding {
        rulebase: rb,
        database: db,
        symbols: syms,
        sat,
    })
}

/// The two guessing rules shared by ∃- and ∀-walkers:
/// `W :- sel(X), W[add: tv(X), assigned(X)]` for both polarities.
fn emit_walk(
    rb: &mut Rulebase,
    walker: Symbol,
    sel: Symbol,
    tv_true: Symbol,
    tv_false: Symbol,
    assigned: Symbol,
    x: Var,
) {
    for tv in [tv_true, tv_false] {
        rb.push(HypRule::new(
            Atom::new(walker, vec![]),
            vec![
                Premise::Atom(Atom::new(sel, vec![x.into()])),
                Premise::Hyp {
                    goal: Atom::new(walker, vec![]),
                    adds: vec![
                        Atom::new(tv, vec![x.into()]),
                        Atom::new(assigned, vec![x.into()]),
                    ],
                    dels: Vec::new(),
                },
            ],
        ));
    }
}

/// Convenience constructors for tests and examples.
pub mod build {
    use super::*;

    /// A positive literal.
    pub fn p(var: BoolVar) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn n(var: BoolVar) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// A plain SAT instance: one ∃ block over all variables.
    pub fn sat(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Qbf {
        Qbf {
            prefix: vec![(Quant::Exists, (0..num_vars).collect())],
            clauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::{n, p, sat};
    use super::*;
    use hdl_core::engine::{BottomUpEngine, ProveEngine, TopDownEngine};

    fn check_all_engines(qbf: &Qbf) {
        let expected = qbf.eval();
        let enc = encode_qbf(qbf).expect("encodes");
        let q = enc.sat_query();
        let mut td = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        assert_eq!(td.holds(&q).unwrap(), expected, "top-down {qbf:?}");
        let mut bu = BottomUpEngine::new(&enc.rulebase, &enc.database).unwrap();
        assert_eq!(bu.holds(&q).unwrap(), expected, "bottom-up {qbf:?}");
        let mut pe = ProveEngine::new(&enc.rulebase, &enc.database)
            .expect("QBF encodings are linearly stratified");
        assert_eq!(pe.holds(&q).unwrap(), expected, "prove {qbf:?}");
    }

    #[test]
    fn sat_instances() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) — satisfiable with x1 = true.
        check_all_engines(&sat(2, vec![vec![p(0), p(1)], vec![n(0), p(1)]]));
        // x0 ∧ ¬x0 — unsatisfiable.
        check_all_engines(&sat(1, vec![vec![p(0)], vec![n(0)]]));
        // Empty matrix — trivially true.
        check_all_engines(&sat(1, vec![]));
        // Empty clause — trivially false.
        check_all_engines(&sat(1, vec![vec![]]));
    }

    #[test]
    fn two_block_formulas() {
        // ∃x0 ∀x1 (x0 ∨ x1): x0 = true works → true.
        let qbf = Qbf {
            prefix: vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![1])],
            clauses: vec![vec![p(0), p(1)]],
        };
        check_all_engines(&qbf);
        // ∃x0 ∀x1 (x0 ∧ x1 requires x1 always true) → false.
        let qbf = Qbf {
            prefix: vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![1])],
            clauses: vec![vec![p(0)], vec![p(1)]],
        };
        check_all_engines(&qbf);
        // ∀x0 ∃x1 (x0 ≠ x1) → true (pick x1 = ¬x0).
        let qbf = Qbf {
            prefix: vec![(Quant::Forall, vec![0]), (Quant::Exists, vec![1])],
            clauses: vec![vec![p(0), p(1)], vec![n(0), n(1)]],
        };
        check_all_engines(&qbf);
    }

    #[test]
    fn three_block_formula() {
        // ∃x0 ∀x1 ∃x2: (x2 ↔ (x0 ∨ x1))'s satisfiability core:
        // clauses (¬x0 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x0 ∨ x1 ∨ ¬x2): true.
        let qbf = Qbf {
            prefix: vec![
                (Quant::Exists, vec![0]),
                (Quant::Forall, vec![1]),
                (Quant::Exists, vec![2]),
            ],
            clauses: vec![vec![n(0), p(2)], vec![n(1), p(2)], vec![p(0), p(1), n(2)]],
        };
        check_all_engines(&qbf);
    }

    #[test]
    fn strata_count_equals_alternation_depth() {
        use hdl_core::analysis::stratify::linear_stratification;
        // ∃∀∃ → at least 3 strata worth of alternation; the exact count
        // is one stratum per negation boundary: matrix + per-∀ + final.
        let qbf = Qbf {
            prefix: vec![
                (Quant::Exists, vec![0]),
                (Quant::Forall, vec![1]),
                (Quant::Exists, vec![2]),
            ],
            clauses: vec![vec![p(0), p(1), p(2)]],
        };
        let enc = encode_qbf(&qbf).unwrap();
        let ls = linear_stratification(&enc.rulebase).expect("linear");
        let one_block = encode_qbf(&sat(2, vec![vec![p(0)]])).unwrap();
        let ls1 = linear_stratification(&one_block.rulebase).unwrap();
        assert!(
            ls.num_strata() > ls1.num_strata(),
            "alternations must add strata: {} vs {}",
            ls.num_strata(),
            ls1.num_strata()
        );
    }

    #[test]
    fn validation_rejects_malformed_formulas() {
        let bad = Qbf {
            prefix: vec![(Quant::Exists, vec![])],
            clauses: vec![],
        };
        assert!(bad.validate().is_err());
        let free = Qbf {
            prefix: vec![(Quant::Exists, vec![0])],
            clauses: vec![vec![p(1)]],
        };
        assert!(free.validate().is_err());
        let dup = Qbf {
            prefix: vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![0])],
            clauses: vec![],
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn exhaustive_small_formulas() {
        // All 2-var, ≤2-clause, ≤2-literal formulas over a fixed clause
        // pool, under all four 2-block prefixes: encoder must agree with
        // the evaluator everywhere.
        let pool = [
            vec![p(0), p(1)],
            vec![n(0), p(1)],
            vec![p(0), n(1)],
            vec![n(0), n(1)],
            vec![p(0)],
            vec![n(1)],
        ];
        let prefixes = [
            vec![(Quant::Exists, vec![0, 1])],
            vec![(Quant::Forall, vec![0, 1])],
            vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![1])],
            vec![(Quant::Forall, vec![0]), (Quant::Exists, vec![1])],
        ];
        for prefix in &prefixes {
            for i in 0..pool.len() {
                for j in i..pool.len() {
                    let qbf = Qbf {
                        prefix: prefix.clone(),
                        clauses: vec![pool[i].clone(), pool[j].clone()],
                    };
                    let expected = qbf.eval();
                    let enc = encode_qbf(&qbf).unwrap();
                    let mut td = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
                    assert_eq!(td.holds(&enc.sat_query()).unwrap(), expected, "{qbf:?}");
                }
            }
        }
    }
}
