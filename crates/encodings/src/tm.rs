//! §5.1: compiling an oracle-machine cascade into a hypothetical rulebase.
//!
//! Given a cascade `Mₖ, …, M₁` and an input string `s̄`, this module builds
//! the database `DB(s̄)` and the linearly stratified rulebase `R(L)` such
//! that `R(L), DB(s̄) ⊢ ACCEPT` iff the cascade accepts `s̄` — the paper's
//! lower-bound construction (Theorem 1), validated in experiment E6
//! against the direct simulator of `hdl-turing`.
//!
//! ## Construction
//!
//! *Database* (§5.1.1): a counter `first(t0), next(t0,t1), …, last(t_{b-1})`
//! over `bound` fresh constants, blank work tapes at time 0 for machines
//! `M₁..Mₖ₋₁`, and the input written on `Mₖ`'s tape at time 0.
//!
//! *Rulebase* (§5.1.2–§5.1.4), per machine `Mᵢ`:
//!
//! - accepting-state rules `acceptᵢ(T̄) ← controlᵢ_q(J̄1, J̄2, T̄)`;
//! - one rule per transition, stepping the configuration hypothetically;
//! - oracle-invocation rules using `oracleᵢ₋₁(T̄)` positively (answer
//!   *yes*) and under negation-as-failure (answer *no*) — the stratum
//!   boundary;
//! - frame axioms propagating untouched cells from `T̄` to `T̄+1` via
//!   `~activeᵢ(J̄, T̄)`.
//!
//! Positions and times are blocks of `ℓ` variables (§6.2.2's ℓ-tuple
//! counter); the standalone [`encode`] uses `ℓ = 1` with the counter laid
//! down as database facts, while the §6 expressibility composition
//! (`lemma2`) uses `ℓ ≥ 1` with the counter *defined by rules* over a
//! hypothetically asserted base order.
//!
//! ## Two corrections to the paper's printed rules
//!
//! The transition rule in §5.1.3(ii) adds `CELLᵢᶜ(j₁′, t′)` — the written
//! symbol at the *new* head position. Combined with the §5.1.4 frame
//! axiom (which refuses to propagate the cell under the head and happily
//! propagates the cell at `j₁′`), this loses the old cell `j₁` and gives
//! `j₁′` two symbols at `t′`. We implement the evidently intended version:
//! the transition adds `CELLᵢᶜ(j₁, t′)` (write where the head *was*), and
//! likewise the oracle write lands at `j₂`, not `j₂′`. Second, the frame
//! axiom's oracle-head `ACTIVE` rule is emitted per `(state, read-symbol)`
//! pair that actually writes the oracle tape, so a non-writing transition
//! does not erase the cell under the idle oracle head; the encoder
//! rejects machines where alternatives of one `(state, symbol)` pair
//! disagree about writing (none of the paper's constructions need that).

use hdl_base::{Atom, Database, GroundAtom, Symbol, SymbolTable, Term, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};
use hdl_turing::{Cascade, Move, State, Sym};

/// The output of the §5.1 compiler.
pub struct TmEncoding {
    /// The rulebase `R(L)`.
    pub rulebase: Rulebase,
    /// The database `DB(s̄)`.
    pub database: Database,
    /// Names for all generated predicates and constants.
    pub symbols: SymbolTable,
    /// The 0-ary `accept` predicate to query.
    pub accept: Symbol,
    /// Counter size (time steps and tape cells).
    pub bound: usize,
}

impl TmEncoding {
    /// The query premise `?- accept.`
    pub fn accept_query(&self) -> Premise {
        Premise::Atom(Atom::new(self.accept, vec![]))
    }
}

/// Predicate-name factory shared with the §6 composition.
pub struct TmNames<'a> {
    /// The symbol table names are interned into.
    pub syms: &'a mut SymbolTable,
    /// Width of position/time blocks (ℓ).
    pub l: usize,
}

impl TmNames<'_> {
    fn counter_const(&mut self, j: usize) -> Symbol {
        self.syms.intern(&format!("t{j}"))
    }
    /// `first(T̄)` — ℓ-ary.
    pub fn first(&mut self) -> Symbol {
        self.syms.intern("first")
    }
    /// `next(T̄, T̄′)` — 2ℓ-ary.
    #[allow(clippy::should_implement_trait)] // named after the paper's NEXT predicate
    pub fn next(&mut self) -> Symbol {
        self.syms.intern("next")
    }
    /// `last(T̄)` — ℓ-ary.
    pub fn last(&mut self) -> Symbol {
        self.syms.intern("last")
    }
    /// `cell_i_c(J̄, T̄)`.
    pub fn cell(&mut self, machine: usize, sym: Sym) -> Symbol {
        self.syms.intern(&format!("cell_{machine}_{}", sym.0))
    }
    /// `control_i_q(J̄1, J̄2, T̄)`.
    pub fn control(&mut self, machine: usize, q: State) -> Symbol {
        self.syms.intern(&format!("control_{machine}_{}", q.0))
    }
    /// `accept_i(T̄)`.
    pub fn accept_i(&mut self, machine: usize) -> Symbol {
        self.syms.intern(&format!("accept_{machine}"))
    }
    /// `oracle_i(T̄)`.
    pub fn oracle(&mut self, machine: usize) -> Symbol {
        self.syms.intern(&format!("oracle_{machine}"))
    }
    /// `active_i(J̄, T̄)`.
    pub fn active(&mut self, machine: usize) -> Symbol {
        self.syms.intern(&format!("active_{machine}"))
    }
    /// The 0-ary top-level `accept`.
    pub fn accept(&mut self) -> Symbol {
        self.syms.intern("accept")
    }
}

/// Allocates fresh variable blocks within one rule.
struct Blocks {
    next: u32,
    l: usize,
}

impl Blocks {
    fn new(l: usize) -> Self {
        Blocks { next: 0, l }
    }
    /// A fresh block of ℓ variables.
    fn block(&mut self) -> Vec<Term> {
        let out: Vec<Term> = (0..self.l)
            .map(|i| Term::Var(Var(self.next + i as u32)))
            .collect();
        self.next += self.l as u32;
        out
    }
}

fn args(blocks: &[&[Term]]) -> Vec<Term> {
    blocks.iter().flat_map(|b| b.iter().copied()).collect()
}

/// Compiles `cascade` on `input` with counter size `bound` (ℓ = 1, counter
/// as database facts).
///
/// Machine indices follow the paper: `M₁` is the bottom (oracle-less)
/// machine, `Mₖ` the top machine that reads the input.
pub fn encode(cascade: &Cascade, input: &[Sym], bound: usize) -> Result<TmEncoding, String> {
    if bound < 2 {
        return Err("bound must be at least 2 (the counter needs a step)".into());
    }
    if input.len() > bound {
        return Err("input longer than the counter".into());
    }
    let mut syms = SymbolTable::new();
    let rulebase = {
        let mut names = TmNames {
            syms: &mut syms,
            l: 1,
        };
        machine_rules(cascade, &mut names)?
    };
    let mut database = Database::new();
    {
        let mut names = TmNames {
            syms: &mut syms,
            l: 1,
        };
        build_database(&mut names, &mut database, cascade, input, bound);
    }
    let accept = syms.intern("accept");
    Ok(TmEncoding {
        rulebase,
        database,
        symbols: syms,
        accept,
        bound,
    })
}

/// Emits the full rulebase `R(L)` for `cascade` (all rule families, no
/// database). Exposed for the §6 composition, which supplies the counter
/// and initial tapes by rules instead of facts.
pub fn machine_rules(cascade: &Cascade, names: &mut TmNames) -> Result<Rulebase, String> {
    let k = cascade.depth();
    for m in cascade.machines.iter() {
        m.validate()
            .map_err(|e| format!("machine {}: {e}", m.name))?;
        check_uniform_oracle_writes(m)?;
    }
    let mut rb = Rulebase::new();
    for i in 1..=k {
        let machine = &cascade.machines[i - 1];
        let below = if i >= 2 { Some(i - 1) } else { None };
        emit_accepting_rules(names, &mut rb, i, machine);
        emit_transition_rules(names, &mut rb, i, machine, below);
        let lower_start = below.map(|b| cascade.machines[b - 1].start);
        emit_oracle_rules(names, &mut rb, i, machine, below, lower_start);
        emit_frame_axioms(names, &mut rb, i, cascade);
    }
    emit_start_rule(names, &mut rb, k, cascade);
    Ok(rb)
}

/// Every alternative of one `(state, symbol)` entry must agree on whether
/// it writes the oracle tape (see module docs).
fn check_uniform_oracle_writes(m: &hdl_turing::Machine) -> Result<(), String> {
    for ((q, s), actions) in &m.transitions {
        let writes: Vec<bool> = actions.iter().map(|a| a.oracle_write.is_some()).collect();
        if writes.iter().any(|&w| w) && writes.iter().any(|&w| !w) {
            return Err(format!(
                "machine {}: state {} symbol {} mixes oracle-writing and \
                 non-writing alternatives",
                m.name, q.0, s.0
            ));
        }
    }
    Ok(())
}

/// §5.1.1: counter + initial tapes (ℓ = 1 only).
fn build_database(
    names: &mut TmNames,
    db: &mut Database,
    cascade: &Cascade,
    input: &[Sym],
    bound: usize,
) {
    let first = names.first();
    let next = names.next();
    let last = names.last();
    let t: Vec<Symbol> = (0..bound).map(|j| names.counter_const(j)).collect();
    db.insert(GroundAtom::new(first, vec![t[0]]));
    for w in t.windows(2) {
        db.insert(GroundAtom::new(next, vec![w[0], w[1]]));
    }
    db.insert(GroundAtom::new(last, vec![t[bound - 1]]));

    let k = cascade.depth();
    // Blank tapes for the oracle machines M₁..Mₖ₋₁ at time 0.
    for i in 1..k {
        let blank = cascade.machines[i - 1].blank;
        let cell_b = names.cell(i, blank);
        for &tj in &t {
            db.insert(GroundAtom::new(cell_b, vec![tj, t[0]]));
        }
    }
    // Input on Mₖ's tape; blanks elsewhere.
    let top = &cascade.machines[k - 1];
    for (j, &tj) in t.iter().enumerate() {
        let sym = input.get(j).copied().unwrap_or(top.blank);
        let cell = names.cell(k, sym);
        db.insert(GroundAtom::new(cell, vec![tj, t[0]]));
    }
}

/// §5.1.3(i): acceptance detection.
fn emit_accepting_rules(
    names: &mut TmNames,
    rb: &mut Rulebase,
    i: usize,
    machine: &hdl_turing::Machine,
) {
    let accept_i = names.accept_i(i);
    for &qa in &machine.accepting {
        let control = names.control(i, qa);
        let mut b = Blocks::new(names.l);
        let (t, j1, j2) = (b.block(), b.block(), b.block());
        // accept_i(T̄) :- control_i_qa(J̄1, J̄2, T̄).
        rb.push(HypRule::new(
            Atom::new(accept_i, t.clone()),
            vec![Premise::Atom(Atom::new(control, args(&[&j1, &j2, &t])))],
        ));
    }
}

/// §5.1.3(ii): one rule per transition alternative.
fn emit_transition_rules(
    names: &mut TmNames,
    rb: &mut Rulebase,
    i: usize,
    machine: &hdl_turing::Machine,
    below: Option<usize>,
) {
    let accept_i = names.accept_i(i);
    let next = names.next();
    for (q, read, action) in machine.all_transitions() {
        let mut b = Blocks::new(names.l);
        let (t, tp, j1, j2, j1p) = (b.block(), b.block(), b.block(), b.block(), b.block());
        let control_q = names.control(i, q);
        let control_next = names.control(i, action.next);
        let cell_read = names.cell(i, read);
        let cell_write = names.cell(i, action.write);

        let mut premises: Vec<Premise> = vec![
            // Bind the configuration first (control facts are EDB-like).
            Premise::Atom(Atom::new(control_q, args(&[&j1, &j2, &t]))),
            Premise::Atom(Atom::new(next, args(&[&t, &tp]))),
            Premise::Atom(Atom::new(cell_read, args(&[&j1, &t]))),
        ];
        // Head movement: left needs next(J̄1′, J̄1); right next(J̄1, J̄1′).
        premises.push(Premise::Atom(match action.work_move {
            Move::Left => Atom::new(next, args(&[&j1p, &j1])),
            Move::Right => Atom::new(next, args(&[&j1, &j1p])),
        }));

        let mut adds: Vec<Atom> = Vec::new();
        // Write where the head was (correction of the printed rule).
        adds.push(Atom::new(cell_write, args(&[&j1, &tp])));

        let new_oracle_head: Vec<Term> = if action.oracle_write.is_some() {
            let j2p = b.block();
            premises.push(Premise::Atom(Atom::new(next, args(&[&j2, &j2p]))));
            j2p
        } else {
            j2.clone()
        };
        if let Some(d) = action.oracle_write {
            let lower = below.expect("validated: oracle writes need a machine below");
            let cell_oracle = names.cell(lower, d);
            adds.push(Atom::new(cell_oracle, args(&[&j2, &tp])));
        }
        adds.insert(
            0,
            Atom::new(control_next, args(&[&j1p, &new_oracle_head, &tp])),
        );

        premises.push(Premise::Hyp {
            goal: Atom::new(accept_i, tp.clone()),
            adds,
            dels: Vec::new(),
        });
        rb.push(HypRule::new(Atom::new(accept_i, t.clone()), premises));
    }
}

/// §5.1.3(iii): oracle invocation and the `ORACLEᵢ₋₁` starter rule.
fn emit_oracle_rules(
    names: &mut TmNames,
    rb: &mut Rulebase,
    i: usize,
    machine: &hdl_turing::Machine,
    below: Option<usize>,
    lower_start: Option<State>,
) {
    let Some(protocol) = machine.oracle else {
        return;
    };
    let lower = below.expect("validated: oracle protocol needs a machine below");
    let lower_start = lower_start.expect("lower machine start state");
    let accept_i = names.accept_i(i);
    let next = names.next();
    let oracle_lower = names.oracle(lower);
    let control_query = names.control(i, protocol.query);
    let control_yes = names.control(i, protocol.yes);
    let control_no = names.control(i, protocol.no);

    for (resume_control, positive) in [(control_yes, true), (control_no, false)] {
        let mut b = Blocks::new(names.l);
        let (t, tp, j1, j2) = (b.block(), b.block(), b.block(), b.block());
        let oracle_atom = Atom::new(oracle_lower, t.clone());
        rb.push(HypRule::new(
            Atom::new(accept_i, t.clone()),
            vec![
                Premise::Atom(Atom::new(control_query, args(&[&j1, &j2, &t]))),
                Premise::Atom(Atom::new(next, args(&[&t, &tp]))),
                if positive {
                    Premise::Atom(oracle_atom)
                } else {
                    // Negation-as-failure at the stratum boundary.
                    Premise::Neg(oracle_atom)
                },
                Premise::Hyp {
                    goal: Atom::new(accept_i, tp.clone()),
                    adds: vec![Atom::new(resume_control, args(&[&j1, &j2, &tp]))],
                    dels: Vec::new(),
                },
            ],
        ));
    }

    // Starter: oracle_{i-1}(T̄) :- first(J̄),
    //     accept_{i-1}(T̄)[add: control_{i-1}_q0(J̄, J̄, T̄)].
    let accept_lower = names.accept_i(lower);
    let control_lower_start = names.control(lower, lower_start);
    let first = names.first();
    let mut b = Blocks::new(names.l);
    let (t, j) = (b.block(), b.block());
    rb.push(HypRule::new(
        Atom::new(oracle_lower, t.clone()),
        vec![
            Premise::Atom(Atom::new(first, j.clone())),
            Premise::Hyp {
                goal: Atom::new(accept_lower, t.clone()),
                adds: vec![Atom::new(control_lower_start, args(&[&j, &j, &t]))],
                dels: Vec::new(),
            },
        ],
    ));
}

/// §5.1.4: frame axioms for machine `Mᵢ`'s work tape.
fn emit_frame_axioms(names: &mut TmNames, rb: &mut Rulebase, i: usize, cascade: &Cascade) {
    let machine = &cascade.machines[i - 1];
    let next = names.next();
    let active_i = names.active(i);

    // Propagation per symbol: cell_i_c(J̄, T̄′) :- next(T̄, T̄′),
    //     cell_i_c(J̄, T̄), ~active_i(J̄, T̄).
    for c in 0..machine.num_symbols {
        let cell_c = names.cell(i, Sym(c));
        let mut b = Blocks::new(names.l);
        let (t, tp, j) = (b.block(), b.block(), b.block());
        rb.push(HypRule::new(
            Atom::new(cell_c, args(&[&j, &tp])),
            vec![
                Premise::Atom(Atom::new(next, args(&[&t, &tp]))),
                Premise::Atom(Atom::new(cell_c, args(&[&j, &t]))),
                Premise::Neg(Atom::new(active_i, args(&[&j, &t]))),
            ],
        ));
    }

    // Own work head: active for every state except the query state.
    let skip = machine.oracle.map(|p| p.query);
    for q in 0..machine.num_states {
        if Some(State(q)) == skip {
            continue;
        }
        let control_q = names.control(i, State(q));
        let mut b = Blocks::new(names.l);
        let (j, j2, t) = (b.block(), b.block(), b.block());
        rb.push(HypRule::new(
            Atom::new(active_i, args(&[&j, &t])),
            vec![Premise::Atom(Atom::new(control_q, args(&[&j, &j2, &t])))],
        ));
    }

    // Oracle head of the machine above (if any): active exactly for the
    // (state, read-symbol) pairs whose transitions write this tape.
    if i < cascade.depth() {
        let upper = &cascade.machines[i]; // M_{i+1}
        let upper_idx = i + 1;
        let mut emitted: Vec<(State, Sym)> = Vec::new();
        for (q, s, action) in upper.all_transitions() {
            if action.oracle_write.is_none() || emitted.contains(&(q, s)) {
                continue;
            }
            emitted.push((q, s));
            let control_q = names.control(upper_idx, q);
            let cell_s = names.cell(upper_idx, s);
            let mut b = Blocks::new(names.l);
            let (j, j1, t) = (b.block(), b.block(), b.block());
            rb.push(HypRule::new(
                Atom::new(active_i, args(&[&j, &t])),
                vec![
                    Premise::Atom(Atom::new(control_q, args(&[&j1, &j, &t]))),
                    Premise::Atom(Atom::new(cell_s, args(&[&j1, &t]))),
                ],
            ));
        }
    }
}

/// The top-level `ACCEPT` rule (§5.1.2).
fn emit_start_rule(names: &mut TmNames, rb: &mut Rulebase, k: usize, cascade: &Cascade) {
    let accept = names.accept();
    let first = names.first();
    let accept_k = names.accept_i(k);
    let start = cascade.machines[k - 1].start;
    let control_start = names.control(k, start);
    let mut b = Blocks::new(names.l);
    let x = b.block();
    rb.push(HypRule::new(
        Atom::new(accept, vec![]),
        vec![
            Premise::Atom(Atom::new(first, x.clone())),
            Premise::Hyp {
                goal: Atom::new(accept_k, x.clone()),
                adds: vec![Atom::new(control_start, args(&[&x, &x, &x]))],
                dels: Vec::new(),
            },
        ],
    ));
}
