//! §6.2.2–6.2.3: bitmap encodings of databases onto machine tapes.
//!
//! The work tape of the top machine holds a bitmap image of the database:
//! the tape is divided into blocks, one per relation `Pᵢ` of arity `αᵢ`,
//! each of size `n^αᵢ`; the cell for tuple `x̄` holds `1` iff
//! `Pᵢ(x̄) ∈ DB`, where tuples are ranked lexicographically under the
//! (asserted) linear order. This module provides the encoding as an
//! executable function — enough to reproduce the paper's diagrams 1–3 and
//! the order-independence argument of §6.2.3 — plus the `INITIALᶜ` *rules*
//! for the unary-relation case used by the end-to-end Lemma 2 pipeline.

use hdl_base::{Atom, Database, Symbol, SymbolTable, Term, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};
use hdl_turing::Sym;

/// Schema of the database being encoded: relations in block order.
#[derive(Clone, Debug)]
pub struct BitmapSchema {
    /// `(predicate, arity)` pairs, one block each, in tape order.
    pub relations: Vec<(Symbol, usize)>,
}

/// Tape symbols used by bitmap images.
pub mod tape_sym {
    use hdl_turing::Sym;
    /// Blank (beyond the bitmap).
    pub const BLANK: Sym = Sym(0);
    /// Bit 0 — tuple absent.
    pub const ZERO: Sym = Sym(1);
    /// Bit 1 — tuple present.
    pub const ONE: Sym = Sym(2);
}

/// Encodes `db` as a tape under the linear order `order` (a permutation
/// of the domain; `order[0]` is the least element).
///
/// The result has length `Σᵢ n^{αᵢ}`; callers append blanks as needed.
pub fn bitmap_tape(db: &Database, schema: &BitmapSchema, order: &[Symbol]) -> Vec<Sym> {
    let n = order.len();
    let index_of = |s: Symbol| -> usize {
        order
            .iter()
            .position(|&o| o == s)
            .expect("constant not in the order")
    };
    let mut tape = Vec::new();
    for &(pred, arity) in &schema.relations {
        let block = n.pow(arity as u32);
        let mut bits = vec![tape_sym::ZERO; block];
        for tuple in db.tuples(pred) {
            assert_eq!(tuple.len(), arity, "schema arity mismatch");
            let mut rank = 0usize;
            for &c in tuple {
                rank = rank * n + index_of(c);
            }
            bits[rank] = tape_sym::ONE;
        }
        tape.extend(bits);
    }
    tape
}

/// Emits the `INITIALᶜ` rules for a single *unary* relation `p` over
/// domain `d` into `rb`, writing directly to the top machine's cell
/// predicates at time `first`:
///
/// ```text
/// cell_k_ONE(J, T̄)   :- p(J), first(T̄).
/// cell_k_ZERO(J, T̄)  :- d(J), ~p(J), first(T̄).
/// ```
///
/// With a unary relation and the ℓ = 1 base order, a tuple's rank *is*
/// its element, so positions need no arithmetic — the general-arity rank
/// computation of [`bitmap_tape`] degenerates to the identity. Positions
/// beyond the bitmap are higher counter tuples (`ℓ ≥ 2`), which the
/// caller blanks with its own rules.
#[allow(clippy::too_many_arguments)]
pub fn unary_initial_rules(
    syms: &mut SymbolTable,
    rb: &mut Rulebase,
    p: Symbol,
    domain: Symbol,
    first_pred: Symbol,
    l: usize,
    cell_one: Symbol,
    cell_zero: Symbol,
    first1: Symbol,
) {
    // Position block: (first1-element)^{l-1} followed by J — rank J in the
    // first n cells of the n^l counter.
    let j = Var(0);
    let tvars: Vec<Term> = (0..l as u32).map(|i| Term::Var(Var(1 + i))).collect();
    let hi: Vec<Term> = (0..l as u32 - 1)
        .map(|i| Term::Var(Var(1 + l as u32 + i)))
        .collect();
    let mut pos: Vec<Term> = hi.clone();
    pos.push(j.into());

    let hi_premises = |hi: &[Term]| -> Vec<Premise> {
        hi.iter()
            .map(|&t| Premise::Atom(Atom::new(first1, vec![t])))
            .collect()
    };

    // cell ONE at positions of p-elements.
    {
        let mut argv = pos.clone();
        argv.extend(tvars.iter().copied());
        let mut premises = vec![Premise::Atom(Atom::new(p, vec![j.into()]))];
        premises.extend(hi_premises(&hi));
        premises.push(Premise::Atom(Atom::new(first_pred, tvars.clone())));
        rb.push(HypRule::new(Atom::new(cell_one, argv), premises));
    }
    // cell ZERO at positions of non-p domain elements.
    {
        let mut argv = pos.clone();
        argv.extend(tvars.iter().copied());
        let mut premises = vec![
            Premise::Atom(Atom::new(domain, vec![j.into()])),
            Premise::Neg(Atom::new(p, vec![j.into()])),
        ];
        premises.extend(hi_premises(&hi));
        premises.push(Premise::Atom(Atom::new(first_pred, tvars.clone())));
        rb.push(HypRule::new(Atom::new(cell_zero, argv), premises));
    }
    let _ = syms;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::GroundAtom;

    /// The paper's diagrams 1–3 (§6.2.3): DB = {P(b,a), P(b,b), Q(b)}.
    fn diagram_db(syms: &mut SymbolTable) -> (Database, BitmapSchema, Symbol, Symbol) {
        let p = syms.intern("p");
        let q = syms.intern("q");
        let a = syms.intern("a");
        let b = syms.intern("b");
        let mut db = Database::new();
        db.insert(GroundAtom::new(p, vec![b, a]));
        db.insert(GroundAtom::new(p, vec![b, b]));
        db.insert(GroundAtom::new(q, vec![b]));
        (
            db,
            BitmapSchema {
                relations: vec![(p, 2), (q, 1)],
            },
            a,
            b,
        )
    }

    fn bits(tape: &[Sym]) -> Vec<u8> {
        tape.iter()
            .map(|s| match *s {
                tape_sym::ZERO => 0,
                tape_sym::ONE => 1,
                _ => 9,
            })
            .collect()
    }

    #[test]
    fn diagram_1_order_a_before_b() {
        let mut syms = SymbolTable::new();
        let (db, schema, a, b) = diagram_db(&mut syms);
        let tape = bitmap_tape(&db, &schema, &[a, b]);
        // P-block: P(a,a) P(a,b) P(b,a) P(b,b) = 0 0 1 1; Q: Q(a) Q(b) = 0 1.
        assert_eq!(bits(&tape), vec![0, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn diagram_2_order_b_before_a() {
        let mut syms = SymbolTable::new();
        let (db, schema, a, b) = diagram_db(&mut syms);
        let tape = bitmap_tape(&db, &schema, &[b, a]);
        // P(b,b) P(b,a) P(a,b) P(a,a) = 1 1 0 0; Q(b) Q(a) = 1 0.
        assert_eq!(bits(&tape), vec![1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn diagram_3_renaming_equals_reordering() {
        // DB' = {P(a,b), P(a,a), Q(a)} (swap a↔b) under a<b equals
        // diagram 2's tape — renaming constants and changing the order are
        // the same operation on the bitmap (§6.2.3).
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let a = syms.intern("a");
        let b = syms.intern("b");
        let mut db2 = Database::new();
        db2.insert(GroundAtom::new(p, vec![a, b]));
        db2.insert(GroundAtom::new(p, vec![a, a]));
        db2.insert(GroundAtom::new(q, vec![a]));
        let schema = BitmapSchema {
            relations: vec![(p, 2), (q, 1)],
        };
        let tape3 = bitmap_tape(&db2, &schema, &[a, b]);
        assert_eq!(bits(&tape3), vec![1, 1, 0, 0, 1, 0]);

        let (db, schema, a, b) = diagram_db(&mut syms);
        let tape2 = bitmap_tape(&db, &schema, &[b, a]);
        assert_eq!(tape2, tape3);
    }

    #[test]
    fn empty_relation_is_all_zeros() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let a = syms.intern("a");
        let b = syms.intern("b");
        let db = Database::new();
        let schema = BitmapSchema {
            relations: vec![(p, 1)],
        };
        let tape = bitmap_tape(&db, &schema, &[a, b]);
        assert_eq!(bits(&tape), vec![0, 0]);
    }
}
