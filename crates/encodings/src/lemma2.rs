//! §6.2 / Lemma 2: the end-to-end expressibility pipeline.
//!
//! Lemma 2 turns any generic yes/no query with a `Σₖᴾ` graph into a
//! constant-free rulebase `R(ψ)` with `k` strata, by composing:
//!
//! 1. the *order assertion* (§6.2.1, [`crate::order`]) — hypothetically
//!    insert every possible linear order `first1/next1/last1` over the
//!    domain predicate `d`;
//! 2. the *ℓ-tuple counter* (§6.2.2, [`crate::counter`]) — Horn rules
//!    lifting the asserted order to `first/next/last` over `n^ℓ` tuples;
//! 3. the *bitmap initialization* (§6.2.2, [`crate::bitmap`]) — rules
//!    writing the database image onto the top machine's tape at time 0
//!    and blanks everywhere else;
//! 4. the §5.1 *machine encoding* ([`crate::tm`]) over ℓ-blocks.
//!
//! This module performs the composition for queries over a **single unary
//! relation** `p` — where a tuple's rank under the order is the element
//! itself, so the bitmap rules need no rank arithmetic. That restriction
//! keeps the construction executable while exercising every part the
//! general proof uses (the general case differs only in the tedious rank
//! bookkeeping the paper itself elides; see DESIGN.md). The resulting
//! rulebase is constant-free, hence generic (§6.1), and the tests verify
//! order-independence: the verdict matches the query on every isomorphic
//! copy of the database.

use crate::counter::{counter_rules, CounterNames};
use crate::order::{order_assertion_rules, OrderNames};
use crate::tm::{machine_rules, TmNames};
use hdl_base::{Atom, Symbol, SymbolTable, Term, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};
use hdl_turing::library::bitmap_alphabet;
use hdl_turing::Cascade;

/// The composed rulebase `R(ψ)` and its interface predicates.
pub struct Lemma2Encoding {
    /// The constant-free rulebase.
    pub rulebase: Rulebase,
    /// Names.
    pub symbols: SymbolTable,
    /// `yes` — provable iff the machine accepts the database's bitmap.
    pub yes: Symbol,
    /// `no :- ~yes.` if requested (Example 8's extra stratum).
    pub no: Option<Symbol>,
    /// The domain predicate `d` (unary EDB).
    pub domain: Symbol,
    /// The query relation `p` (unary EDB).
    pub p: Symbol,
}

impl Lemma2Encoding {
    /// The query premise `?- yes.`
    pub fn yes_query(&self) -> Premise {
        Premise::Atom(Atom::new(self.yes, vec![]))
    }

    /// The query premise `?- no.` (requires `with_no`).
    pub fn no_query(&self) -> Option<Premise> {
        self.no.map(|n| Premise::Atom(Atom::new(n, vec![])))
    }
}

/// Composes `R(ψ)` for a unary-relation generic query decided by
/// `cascade` on the bitmap of `p`, with an `ℓ`-tuple counter.
///
/// The cascade's top machine must use the [`bitmap_alphabet`]. With a
/// domain of size `n`, the machine gets `n^ℓ` time steps and tape cells;
/// the bitmap occupies the first `n` cells, the rest are blank.
pub fn unary_query_rulebase(
    cascade: &Cascade,
    l: usize,
    with_no: bool,
) -> Result<Lemma2Encoding, String> {
    if l < 1 {
        return Err("counter width must be at least 1".into());
    }
    let top = cascade.top();
    if top.num_symbols < 3 {
        return Err("the top machine must use the 3-symbol bitmap alphabet".into());
    }
    let mut syms = SymbolTable::new();
    let domain = syms.intern("d");
    let p = syms.intern("p");

    // 4. Machine rules over ℓ-blocks (also interns accept/first/next/...).
    let mut rb = {
        let mut names = TmNames { syms: &mut syms, l };
        machine_rules(cascade, &mut names)?
    };
    let accept = syms.intern("accept");
    let first_pred = syms.intern("first");

    // 1. Order assertion with `goal = accept`.
    let order_names = OrderNames::standard(&mut syms, domain, accept);
    order_assertion_rules(&order_names, &mut rb);

    // 2. Counter over the asserted order.
    let counter_names = CounterNames {
        first1: order_names.first1,
        next1: order_names.next1,
        last1: order_names.last1,
        domain,
    };
    counter_rules(&mut syms, &counter_names, l, &mut rb);

    // 3a. Bitmap of `p` on the top machine's tape at time 0.
    let k = cascade.depth();
    let cell_one;
    let cell_zero;
    {
        let mut names = TmNames { syms: &mut syms, l };
        cell_one = names.cell(k, bitmap_alphabet::ONE);
        cell_zero = names.cell(k, bitmap_alphabet::ZERO);
    }
    crate::bitmap::unary_initial_rules(
        &mut syms,
        &mut rb,
        p,
        domain,
        first_pred,
        l,
        cell_one,
        cell_zero,
        order_names.first1,
    );

    // 3b. Blanks beyond the bitmap on the top tape: any position whose
    // high digits are not all minimal.
    {
        let cell_blank = {
            let mut names = TmNames { syms: &mut syms, l };
            names.cell(k, cascade.top().blank)
        };
        for m in 0..l.saturating_sub(1) {
            // Position block H₁..H_{l-1}, J; T̄ block after.
            let hi: Vec<Term> = (0..l as u32 - 1).map(|i| Term::Var(Var(i))).collect();
            let j = Term::Var(Var(l as u32 - 1));
            let tvars: Vec<Term> = (0..l as u32)
                .map(|i| Term::Var(Var(l as u32 + i)))
                .collect();
            let mut argv = hi.clone();
            argv.push(j);
            argv.extend(tvars.iter().copied());
            let mut premises: Vec<Premise> = hi
                .iter()
                .map(|&t| Premise::Atom(Atom::new(domain, vec![t])))
                .collect();
            premises.push(Premise::Atom(Atom::new(domain, vec![j])));
            premises.push(Premise::Neg(Atom::new(order_names.first1, vec![hi[m]])));
            premises.push(Premise::Atom(Atom::new(first_pred, tvars.clone())));
            rb.push(HypRule::new(Atom::new(cell_blank, argv), premises));
        }
    }

    // 3c. Blank tapes for the lower machines at time 0 (all positions).
    for i in 1..k {
        let cell_blank = {
            let mut names = TmNames { syms: &mut syms, l };
            names.cell(i, cascade.machines[i - 1].blank)
        };
        let jvars: Vec<Term> = (0..l as u32).map(|i| Term::Var(Var(i))).collect();
        let tvars: Vec<Term> = (0..l as u32)
            .map(|i| Term::Var(Var(l as u32 + i)))
            .collect();
        let mut argv = jvars.clone();
        argv.extend(tvars.iter().copied());
        let mut premises: Vec<Premise> = jvars
            .iter()
            .map(|&t| Premise::Atom(Atom::new(domain, vec![t])))
            .collect();
        premises.push(Premise::Atom(Atom::new(first_pred, tvars.clone())));
        rb.push(HypRule::new(Atom::new(cell_blank, argv), premises));
    }

    // Optional Example-8 stratum.
    let no = if with_no {
        let no = syms.intern("noanswer");
        rb.push(HypRule::new(
            Atom::new(no, vec![]),
            vec![Premise::Neg(Atom::new(order_names.yes, vec![]))],
        ));
        Some(no)
    } else {
        None
    };

    debug_assert!(rb.is_constant_free(), "R(ψ) must be constant-free (§6.1)");
    Ok(Lemma2Encoding {
        rulebase: rb,
        symbols: syms,
        yes: order_names.yes,
        no,
        domain,
        p,
    })
}
