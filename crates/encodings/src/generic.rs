//! Corollary 2: lifting a yes/no rulebase to a tuple-returning query.
//!
//! Given `R(ψ)` with a 0-ary `YES`, the corollary's rule
//!
//! ```text
//! out(X₁,…,X_α) :- d(X₁), …, d(X_α), yes[add: p0(X₁,…,X_α)].
//! ```
//!
//! enumerates candidate α-tuples over the domain, marks each with the
//! fresh relation `p0` hypothetically, and keeps those for which the
//! yes/no query accepts the marked database: `R(φ), DB ⊢ out(x̄)` iff
//! `x̄ ∈ φ(DB)`.

use hdl_base::{Atom, Symbol, SymbolTable, Term, Var};
use hdl_core::ast::{HypRule, Premise, Rulebase};

/// Adds the Corollary 2 output rule to `rb`.
///
/// Returns the `out` predicate. `p0` is the marker relation the inner
/// yes/no query inspects; `arity` is the output arity `α₀`.
pub fn add_output_rule(
    syms: &mut SymbolTable,
    rb: &mut Rulebase,
    yes: Symbol,
    domain: Symbol,
    p0: Symbol,
    arity: usize,
) -> Symbol {
    let out = syms.intern("out");
    let xs: Vec<Term> = (0..arity as u32).map(|i| Term::Var(Var(i))).collect();
    let mut premises: Vec<Premise> = xs
        .iter()
        .map(|&x| Premise::Atom(Atom::new(domain, vec![x])))
        .collect();
    premises.push(Premise::Hyp {
        goal: Atom::new(yes, vec![]),
        adds: vec![Atom::new(p0, xs.clone())],
        dels: Vec::new(),
    });
    rb.push(HypRule::new(Atom::new(out, xs), premises));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::{Database, GroundAtom};
    use hdl_core::engine::TopDownEngine;
    use hdl_core::parser::parse_program;

    /// Inner yes/no query: "the marked element is isolated (has no edge)".
    /// Lifting it returns exactly the isolated nodes.
    #[test]
    fn output_rule_enumerates_answers() {
        let mut syms = SymbolTable::new();
        let mut rb = parse_program(
            "yes :- p0(X), ~touched(X).
             touched(X) :- e(X, Y).
             touched(X) :- e(Y, X).",
            &mut syms,
        )
        .unwrap();
        let yes = syms.lookup("yes").unwrap();
        let p0 = syms.lookup("p0").unwrap();
        let d = syms.intern("d");
        let out = add_output_rule(&mut syms, &mut rb, yes, d, p0, 1);

        let e = syms.lookup("e").unwrap();
        let (a, b, c) = (syms.intern("a"), syms.intern("b"), syms.intern("c"));
        let mut db = Database::new();
        db.insert(GroundAtom::new(e, vec![a, b]));
        for x in [a, b, c] {
            db.insert(GroundAtom::new(d, vec![x]));
        }

        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        let pattern = Atom::new(out, vec![Term::Var(Var(0))]);
        let answers = eng.answers(&pattern).unwrap();
        assert_eq!(answers, vec![vec![c]], "c is the only isolated node");
    }

    /// Binary output arity: ordered pairs not connected by an edge.
    #[test]
    fn output_rule_binary_arity() {
        let mut syms = SymbolTable::new();
        let mut rb = parse_program("yes :- p0(X, Y), ~e(X, Y).", &mut syms).unwrap();
        let yes = syms.lookup("yes").unwrap();
        let p0 = syms.lookup("p0").unwrap();
        let d = syms.intern("d");
        let out = add_output_rule(&mut syms, &mut rb, yes, d, p0, 2);

        let e = syms.lookup("e").unwrap();
        let (a, b) = (syms.intern("a"), syms.intern("b"));
        let mut db = Database::new();
        db.insert(GroundAtom::new(e, vec![a, b]));
        db.insert(GroundAtom::new(d, vec![a]));
        db.insert(GroundAtom::new(d, vec![b]));

        let mut eng = TopDownEngine::new(&rb, &db).unwrap();
        let pattern = Atom::new(out, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let answers = eng.answers(&pattern).unwrap();
        // 4 ordered pairs, 1 edge → 3 non-edges.
        assert_eq!(answers.len(), 3);
        assert!(!answers.contains(&vec![a, b]));
    }
}
