//! E6: the §5.1 lower-bound construction, cross-checked against the
//! direct oracle-machine simulator.
//!
//! For every (cascade, input, bound) triple:
//! `R(L), DB(s̄) ⊢ ACCEPT` ⇔ the cascade accepts `s̄` within the bound.

use hdl_core::engine::TopDownEngine;
use hdl_encodings::tm::encode;
use hdl_turing::library;
use hdl_turing::{Cascade, Sym};

const S0: Sym = Sym(0);
const S1: Sym = Sym(1);

fn encoded_accepts(cascade: &Cascade, input: &[Sym], bound: usize) -> bool {
    let enc = encode(cascade, input, bound).expect("encodable");
    let mut engine =
        TopDownEngine::new(&enc.rulebase, &enc.database).expect("encoding is stratified");
    engine.holds(&enc.accept_query()).expect("evaluation")
}

fn assert_matches_simulator(cascade: &Cascade, input: &[Sym], bound: usize) {
    let direct = cascade.accepts(input, bound);
    let encoded = encoded_accepts(cascade, input, bound);
    assert_eq!(
        encoded, direct,
        "encoding disagrees with simulator on input {input:?} (bound {bound})"
    );
}

#[test]
fn always_accepting_machine() {
    let c = Cascade::new(vec![library::always_accept()]).unwrap();
    assert_matches_simulator(&c, &[], 3);
    assert!(encoded_accepts(&c, &[], 3));
}

#[test]
fn never_accepting_machine() {
    let c = Cascade::new(vec![library::never_accept()]).unwrap();
    assert_matches_simulator(&c, &[S0, S1], 5);
    assert!(!encoded_accepts(&c, &[S0, S1], 5));
}

#[test]
fn contains_one_on_various_inputs() {
    let c = Cascade::new(vec![library::contains_one()]).unwrap();
    for input in [
        vec![],
        vec![S0],
        vec![S1],
        vec![S0, S0, S1],
        vec![S0, S0, S0],
        vec![S1, S0, S0],
    ] {
        assert_matches_simulator(&c, &input, 6);
    }
}

#[test]
fn parity_machine_encoding() {
    let c = Cascade::new(vec![library::even_ones()]).unwrap();
    for input in [
        vec![],
        vec![S1],
        vec![S1, S1],
        vec![S1, S0, S1],
        vec![S1, S1, S1],
    ] {
        assert_matches_simulator(&c, &input, 7);
    }
}

#[test]
fn nondeterministic_guessing_machine() {
    // ∃-guessing exercises the NP search through hypothetical insertion.
    let c = Cascade::new(vec![library::guess_contains_one(2)]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(encoded_accepts(&c, &[], 8));
}

#[test]
fn time_bound_is_respected() {
    // The 1 sits at cell 3; reaching it needs 4 steps plus the accept.
    let c = Cascade::new(vec![library::contains_one()]).unwrap();
    let input = vec![S0, S0, S0, S1];
    assert_matches_simulator(&c, &input, 6); // enough time: accept
    assert_matches_simulator(&c, &input, 4); // too little: reject
    assert!(!encoded_accepts(&c, &input, 4));
}

#[test]
fn two_level_cascade_deterministic_writer() {
    // write 1 → ask contains-one → accept on yes: ACCEPT.
    let top = library::write_then_ask(S1, true);
    let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(encoded_accepts(&c, &[], 8));

    // write 0 → ask → accept on yes: REJECT (oracle says no).
    let top = library::write_then_ask(S0, true);
    let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(!encoded_accepts(&c, &[], 8));

    // write 0 → ask → accept on NO: ACCEPT through the ~ORACLE rule.
    let top = library::write_then_ask(S0, false);
    let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(encoded_accepts(&c, &[], 8));
}

#[test]
fn two_level_cascade_with_guessing() {
    // Guess one bit onto the oracle tape, accept on yes: satisfiable.
    let top = library::guess_and_ask(1);
    let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(encoded_accepts(&c, &[], 8));

    // Accept on no: also satisfiable (guess 0).
    let top = library::guess_and_ask_no(1);
    let c = Cascade::new(vec![top, library::contains_one()]).unwrap();
    assert_matches_simulator(&c, &[], 8);
    assert!(encoded_accepts(&c, &[], 8));
}

#[test]
fn encoding_is_linearly_stratified_with_k_strata() {
    use hdl_core::analysis::stratify::linear_stratification;
    // One machine → 1 stratum; two machines → 2 strata (Theorem 1 shape).
    let c1 = Cascade::new(vec![library::contains_one()]).unwrap();
    let enc = encode(&c1, &[S1], 4).unwrap();
    let ls = linear_stratification(&enc.rulebase).expect("linearly stratified");
    assert_eq!(ls.num_strata(), 1);

    let top = library::write_then_ask(S1, true);
    let c2 = Cascade::new(vec![top, library::contains_one()]).unwrap();
    let enc = encode(&c2, &[], 5).unwrap();
    let ls = linear_stratification(&enc.rulebase).expect("linearly stratified");
    assert_eq!(ls.num_strata(), 2);
    // accept_2 sits above accept_1.
    let a1 = enc.symbols.lookup("accept_1").unwrap();
    let a2 = enc.symbols.lookup("accept_2").unwrap();
    assert!(ls.part(a2) > ls.part(a1));
}

#[test]
fn encoder_input_validation() {
    let c = Cascade::new(vec![library::contains_one()]).unwrap();
    assert!(encode(&c, &[], 1).is_err(), "bound too small");
    assert!(
        encode(&c, &[S0, S0, S0], 2).is_err(),
        "input exceeds counter"
    );
}

#[test]
fn three_level_cascade_has_three_strata() {
    // M₃ = write 1 then ask; M₂ = guess a bit, ask M₁, accept on NO;
    // M₁ = contains-one. A Σ₃ᴾ-shaped composite.
    let m3 = library::write_then_ask(S1, true);
    let m2 = library::guess_and_ask_no(1);
    let m1 = library::contains_one();
    let c = Cascade::new(vec![m3, m2, m1]).unwrap();
    let bound = 8;
    let direct = c.accepts(&[], bound);
    let enc = encode(&c, &[], bound).unwrap();
    let ls = hdl_core::analysis::stratify::linear_stratification(&enc.rulebase)
        .expect("linearly stratified");
    assert_eq!(ls.num_strata(), 3, "three machines, three strata");
    let mut engine = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
    assert_eq!(engine.holds(&enc.accept_query()).unwrap(), direct);
}

#[test]
fn three_level_cascade_both_outcomes() {
    // Vary the top machine's acceptance condition to exercise both
    // verdicts through two oracle layers.
    for accept_on_yes in [true, false] {
        let m3 = library::write_then_ask(S1, accept_on_yes);
        let m2 = library::guess_and_ask(1);
        let m1 = library::contains_one();
        let c = Cascade::new(vec![m3, m2, m1]).unwrap();
        assert_matches_simulator(&c, &[], 8);
    }
}

#[test]
fn accepting_traces_align_with_encoding_verdicts() {
    use hdl_turing::{accepting_trace, validate_trace};
    let c = Cascade::new(vec![library::guess_contains_one(2)]).unwrap();
    let bound = 8;
    let trace = accepting_trace(&c, &[], bound);
    let encoded = encoded_accepts(&c, &[], bound);
    assert_eq!(trace.is_some(), encoded);
    if let Some(t) = trace {
        assert_eq!(
            validate_trace(&c, &[], bound, &t),
            None,
            "witness validates"
        );
    }
}
