//! E8: the §6 expressibility pipeline on unordered domains.
//!
//! `R(ψ)` composed by `lemma2::unary_query_rulebase` must decide the
//! generic query on every database — with no linear order supplied: the
//! rulebase asserts all orders hypothetically and genericity makes the
//! verdict order-independent (§6.2.3). Verdicts are compared against the
//! query computed directly, across databases and isomorphic copies.

use hdl_base::{Database, GroundAtom, Symbol};
use hdl_core::engine::TopDownEngine;
use hdl_encodings::lemma2::unary_query_rulebase;
use hdl_turing::library;
use hdl_turing::Cascade;

/// Builds the EDB: domain `a0..a_{n-1}`, `p` on the given indices.
fn unary_db(
    enc: &hdl_encodings::lemma2::Lemma2Encoding,
    syms: &mut hdl_base::SymbolTable,
    n: usize,
    p_members: &[usize],
) -> Database {
    let consts: Vec<Symbol> = (0..n).map(|i| syms.intern(&format!("a{i}"))).collect();
    let mut db = Database::new();
    for &c in &consts {
        db.insert(GroundAtom::new(enc.domain, vec![c]));
    }
    for &i in p_members {
        db.insert(GroundAtom::new(enc.p, vec![consts[i]]));
    }
    db
}

fn run_yes(cascade: &Cascade, l: usize, n: usize, p_members: &[usize]) -> bool {
    let enc = unary_query_rulebase(cascade, l, false).expect("composition");
    let mut syms = enc.symbols.clone();
    let db = unary_db(&enc, &mut syms, n, p_members);
    let mut eng = TopDownEngine::new(&enc.rulebase, &db).expect("stratified");
    eng.holds(&enc.yes_query()).expect("evaluation")
}

#[test]
fn nonempty_query_on_unordered_domains() {
    let cascade = Cascade::new(vec![library::bitmap_nonempty()]).unwrap();
    // ℓ = 2: n² time steps, bitmap in the first n cells.
    for n in 2..=3 {
        assert!(!run_yes(&cascade, 2, n, &[]), "p = ∅ → no (n={n})");
        for i in 0..n {
            assert!(
                run_yes(&cascade, 2, n, &[i]),
                "p = {{a{i}}} → yes (n={n}) — must hold wherever the element \
                 lands in the asserted order"
            );
        }
    }
    assert!(run_yes(&cascade, 2, 3, &[0, 2]));
}

#[test]
fn parity_query_on_unordered_domains() {
    let cascade = Cascade::new(vec![library::bitmap_even_ones()]).unwrap();
    for n in 2..=3 {
        for subset_mask in 0..(1u32 << n) {
            let members: Vec<usize> = (0..n).filter(|&i| subset_mask & (1 << i) != 0).collect();
            let expected = members.len().is_multiple_of(2);
            assert_eq!(
                run_yes(&cascade, 2, n, &members),
                expected,
                "|p| = {} on n = {n}",
                members.len()
            );
        }
    }
}

#[test]
fn genericity_verdict_is_isomorphism_invariant() {
    // The same query on an isomorphic database (renamed constants) must
    // agree — the §6.2.3 consistency criterion, observable because the
    // composed rulebase is constant-free.
    let cascade = Cascade::new(vec![library::bitmap_nonempty()]).unwrap();
    let enc = unary_query_rulebase(&cascade, 2, false).unwrap();
    assert!(enc.rulebase.is_constant_free());

    let mut syms = enc.symbols.clone();
    // Database 1: domain {x, y, z}, p = {y}.
    let (x, y, z) = (syms.intern("x"), syms.intern("y"), syms.intern("z"));
    let mut db1 = Database::new();
    for c in [x, y, z] {
        db1.insert(GroundAtom::new(enc.domain, vec![c]));
    }
    db1.insert(GroundAtom::new(enc.p, vec![y]));
    // Database 2: renamed via x→z, y→x, z→y; p = {x}.
    let mut db2 = Database::new();
    for c in [x, y, z] {
        db2.insert(GroundAtom::new(enc.domain, vec![c]));
    }
    db2.insert(GroundAtom::new(enc.p, vec![x]));

    let v1 = TopDownEngine::new(&enc.rulebase, &db1)
        .unwrap()
        .holds(&enc.yes_query())
        .unwrap();
    let v2 = TopDownEngine::new(&enc.rulebase, &db2)
        .unwrap()
        .holds(&enc.yes_query())
        .unwrap();
    assert_eq!(v1, v2, "isomorphic databases must get the same verdict");
    assert!(v1);
}

#[test]
fn example_8_stratum_negates_the_verdict() {
    // `no :- ~yes.` — empty p: no holds; nonempty p: no fails.
    let cascade = Cascade::new(vec![library::bitmap_nonempty()]).unwrap();
    let enc = unary_query_rulebase(&cascade, 2, true).unwrap();
    let mut syms = enc.symbols.clone();

    let db_empty = unary_db(&enc, &mut syms, 2, &[]);
    let mut eng = TopDownEngine::new(&enc.rulebase, &db_empty).unwrap();
    assert!(!eng.holds(&enc.yes_query()).unwrap());
    assert!(eng.holds(&enc.no_query().unwrap()).unwrap());

    let db_one = unary_db(&enc, &mut syms, 2, &[1]);
    let mut eng = TopDownEngine::new(&enc.rulebase, &db_one).unwrap();
    assert!(eng.holds(&enc.yes_query()).unwrap());
    assert!(!eng.holds(&enc.no_query().unwrap()).unwrap());
}
