//! # hdl-datalog
//!
//! Plain (non-hypothetical) Datalog with stratified negation — the baseline
//! substrate of the Bonner PODS '89 reproduction.
//!
//! The paper positions hypothetical rules against ordinary function-free
//! Horn logic, whose data-complexity is P regardless of linearity or
//! stratified negation (§1). This crate provides that comparison system:
//!
//! - [`ast`] — rules with positive/negated body literals;
//! - [`depgraph`] — the predicate dependency graph and Tarjan SCCs;
//! - [`stratify`] — the stratified-negation test and stratum assignment;
//! - [`naive`] / [`seminaive`] — bottom-up evaluation to the perfect
//!   model (Apt–Blair–Walker / Przymusinski semantics, the paper's [1] and
//!   [20]), naive and differential;
//! - [`magic`] — the magic-sets transformation for goal-directed
//!   bottom-up evaluation (the paper's [2] is the survey of such
//!   strategies for linear rules);
//! - [`program`] — an arity-checked rule container.
//!
//! The hypothetical engine in `hdl-core` reuses this crate's dependency
//! analysis and mirrors its perfect-model construction per database.

#![warn(missing_docs)]

pub mod ast;
pub mod depgraph;
pub mod eval;
pub mod magic;
pub mod naive;
pub mod program;
pub mod seminaive;
pub mod stratify;

pub use ast::{Literal, Rule};
pub use depgraph::{DepGraph, EdgeKind};
pub use program::Program;
pub use stratify::{stratify, Stratification};
