//! Shared rule-body matching for the bottom-up engines.
//!
//! Bodies are evaluated left to right with backtracking over the indexed
//! database. Variables that remain unbound when a negated literal (or the
//! head) is reached are enumerated over the *active domain* — the set of
//! constants in the program and database — which implements the paper's
//! "ground substitution over `dom(R, DB)`" semantics (Definition 3) for
//! rules that are not range-restricted.

use crate::ast::{Literal, Rule};
use hdl_base::{Bindings, Database, GroundAtom, Symbol};

/// Collects the active domain of a rule set plus database.
pub fn active_domain(rules: &[Rule], db: &Database) -> Vec<Symbol> {
    let mut dom: Vec<Symbol> = db.constants().into_iter().collect();
    for r in rules {
        for t in r
            .head
            .args
            .iter()
            .chain(r.body.iter().flat_map(|l| l.atom().args.iter()))
        {
            if let Some(c) = t.as_const() {
                dom.push(c);
            }
        }
    }
    dom.sort_unstable();
    dom.dedup();
    dom
}

/// Calls `emit` with every head fact derivable from `rule` in one step.
///
/// `delta_pos`: if `Some(i)`, positive literal `i` is matched against
/// `delta` instead of `db` (the semi-naive differential); all other
/// positive literals match `db`, and negated literals are always tested
/// against `db` (they refer to strictly lower, already-closed strata).
pub fn fire_rule(
    rule: &Rule,
    db: &Database,
    delta: Option<(&Database, usize)>,
    domain: &[Symbol],
    emit: &mut impl FnMut(GroundAtom),
) {
    let mut bindings = Bindings::new(rule.num_vars);
    walk(rule, 0, db, delta, domain, &mut bindings, emit);
}

fn walk(
    rule: &Rule,
    idx: usize,
    db: &Database,
    delta: Option<(&Database, usize)>,
    domain: &[Symbol],
    bindings: &mut Bindings,
    emit: &mut impl FnMut(GroundAtom),
) {
    if idx == rule.body.len() {
        emit_head(rule, domain, bindings, emit);
        return;
    }
    match &rule.body[idx] {
        Literal::Pos(atom) => {
            let source = match delta {
                Some((d, pos)) if pos == idx => d,
                _ => db,
            };
            source.for_each_match(atom, bindings, |b| {
                walk(rule, idx + 1, db, delta, domain, b, emit);
                false
            });
        }
        Literal::Neg(atom) => {
            // Ground any remaining free variables over the domain, then
            // require absence.
            let free = bindings.free_vars_of(atom);
            enumerate(domain, &free, bindings, &mut |b| {
                let fact = atom.ground(b).expect("all vars bound after enumeration");
                if !db.contains(&fact) {
                    walk(rule, idx + 1, db, delta, domain, b, emit);
                }
            });
        }
    }
}

fn emit_head(
    rule: &Rule,
    domain: &[Symbol],
    bindings: &mut Bindings,
    emit: &mut impl FnMut(GroundAtom),
) {
    let free = bindings.free_vars_of(&rule.head);
    enumerate(domain, &free, bindings, &mut |b| {
        let fact = rule.head.ground(b).expect("all head vars bound");
        emit(fact);
    });
}

/// Enumerates all assignments of `vars` over `domain`, calling `f` for each
/// complete assignment; restores `bindings` afterwards.
pub fn enumerate(
    domain: &[Symbol],
    vars: &[hdl_base::Var],
    bindings: &mut Bindings,
    f: &mut impl FnMut(&mut Bindings),
) {
    if vars.is_empty() {
        f(bindings);
        return;
    }
    let (first, rest) = (vars[0], &vars[1..]);
    for &c in domain {
        bindings.set(first, c);
        enumerate(domain, rest, bindings, f);
    }
    bindings.unset(first);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::{Atom, Term, Var};

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }
    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(s(p), args.iter().map(|&a| s(a)).collect())
    }

    #[test]
    fn join_two_literals() {
        // h(X,Z) :- e(X,Y), e(Y,Z).
        let rule = Rule::new(
            Atom::new(s(0), vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(s(1), vec![v(0), v(1)])),
                Literal::Pos(Atom::new(s(1), vec![v(1), v(2)])),
            ],
        );
        let mut db = Database::new();
        db.insert(fact(1, &[10, 11]));
        db.insert(fact(1, &[11, 12]));
        db.insert(fact(1, &[12, 13]));
        let dom = active_domain(std::slice::from_ref(&rule), &db);
        let mut out = Vec::new();
        fire_rule(&rule, &db, None, &dom, &mut |f| out.push(f));
        out.sort();
        assert_eq!(out, vec![fact(0, &[10, 12]), fact(0, &[11, 13])]);
    }

    #[test]
    fn negation_filters() {
        // h(X) :- d(X), ~bad(X).
        let rule = Rule::new(
            Atom::new(s(0), vec![v(0)]),
            vec![
                Literal::Pos(Atom::new(s(1), vec![v(0)])),
                Literal::Neg(Atom::new(s(2), vec![v(0)])),
            ],
        );
        let mut db = Database::new();
        db.insert(fact(1, &[1]));
        db.insert(fact(1, &[2]));
        db.insert(fact(2, &[2]));
        let dom = active_domain(std::slice::from_ref(&rule), &db);
        let mut out = Vec::new();
        fire_rule(&rule, &db, None, &dom, &mut |f| out.push(f));
        assert_eq!(out, vec![fact(0, &[1])]);
    }

    #[test]
    fn unsafe_negated_var_enumerates_domain() {
        // lonely :- ~likes(X, X).  (X free in a negated literal)
        let rule = Rule::new(
            Atom::new(s(0), vec![]),
            vec![Literal::Neg(Atom::new(s(1), vec![v(0), v(0)]))],
        );
        let mut db = Database::new();
        db.insert(fact(1, &[1, 1]));
        db.insert(fact(1, &[2, 3]));
        let dom = active_domain(std::slice::from_ref(&rule), &db);
        let mut out = Vec::new();
        fire_rule(&rule, &db, None, &dom, &mut |f| out.push(f));
        // Holds because e.g. likes(2,2) is absent — existential over domain.
        assert_eq!(
            out.len(),
            dom.len() - 1,
            "one emission per non-reflexive witness"
        );
    }

    #[test]
    fn unsafe_head_var_enumerates_domain() {
        // all(X) :- trigger.
        let rule = Rule::new(
            Atom::new(s(0), vec![v(0)]),
            vec![Literal::Pos(Atom::new(s(1), vec![]))],
        );
        let mut db = Database::new();
        db.insert(fact(1, &[]));
        db.insert(fact(2, &[7]));
        db.insert(fact(2, &[8]));
        let dom = active_domain(std::slice::from_ref(&rule), &db);
        let mut out = Vec::new();
        fire_rule(&rule, &db, None, &dom, &mut |f| out.push(f));
        out.sort();
        assert_eq!(out, vec![fact(0, &[7]), fact(0, &[8])]);
    }

    #[test]
    fn delta_restricts_one_position() {
        // h(X,Z) :- e(X,Y), e(Y,Z) with second literal over delta only.
        let rule = Rule::new(
            Atom::new(s(0), vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(s(1), vec![v(0), v(1)])),
                Literal::Pos(Atom::new(s(1), vec![v(1), v(2)])),
            ],
        );
        let mut db = Database::new();
        db.insert(fact(1, &[10, 11]));
        db.insert(fact(1, &[11, 12]));
        db.insert(fact(1, &[12, 13]));
        let mut delta = Database::new();
        delta.insert(fact(1, &[12, 13]));
        let dom = active_domain(std::slice::from_ref(&rule), &db);
        let mut out = Vec::new();
        fire_rule(&rule, &db, Some((&delta, 1)), &dom, &mut |f| out.push(f));
        assert_eq!(out, vec![fact(0, &[11, 13])]);
    }
}
