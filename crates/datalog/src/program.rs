//! Program container: rules plus the symbol table they were built against,
//! with arity checking.

use crate::ast::Rule;
use crate::stratify::{stratify, Stratification};
use hdl_base::{Error, FxHashMap, Result, Symbol, SymbolTable};

/// A checked Datalog program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
    arities: FxHashMap<Symbol, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule after checking arity consistency against earlier rules.
    pub fn push(&mut self, rule: Rule, symbols: &SymbolTable) -> Result<()> {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| l.atom())) {
            match self.arities.get(&atom.pred) {
                Some(&a) if a != atom.arity() => {
                    return Err(Error::ArityMismatch {
                        predicate: symbols.name(atom.pred).to_owned(),
                        expected: a,
                        found: atom.arity(),
                    });
                }
                Some(_) => {}
                None => {
                    self.arities.insert(atom.pred, atom.arity());
                }
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// The recorded arity of `p`, if it occurs in the program.
    pub fn arity(&self, p: Symbol) -> Option<usize> {
        self.arities.get(&p).copied()
    }

    /// Stratifies the program.
    pub fn stratification(&self) -> Result<Stratification> {
        stratify(&self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;
    use hdl_base::{Atom, Term, Var};

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let mut prog = Program::new();
        prog.push(
            Rule::new(
                Atom::new(p, vec![Term::Var(Var(0))]),
                vec![Literal::Pos(Atom::new(q, vec![Term::Var(Var(0))]))],
            ),
            &syms,
        )
        .unwrap();
        let err = prog
            .push(
                Rule::new(
                    Atom::new(q, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
                    vec![],
                ),
                &syms,
            )
            .unwrap_err();
        assert!(matches!(err, Error::ArityMismatch { .. }));
        assert_eq!(prog.arity(p), Some(1));
    }
}
