//! Predicate dependency graphs and strongly connected components.
//!
//! The dependency graph of a program has one node per predicate and an edge
//! `head → body-pred` for every body occurrence, labelled positive or
//! negative. Stratification (and, in `hdl-core`, linearity) is decided on
//! the condensation of this graph, computed with Tarjan's algorithm.

use hdl_base::{FxHashMap, Symbol};

/// Polarity of a dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// The body predicate occurs positively.
    Positive,
    /// The body predicate occurs under negation-as-failure.
    Negative,
}

/// A labelled predicate dependency graph.
#[derive(Default, Debug)]
pub struct DepGraph {
    /// Dense renumbering of the predicates that occur.
    index: FxHashMap<Symbol, usize>,
    /// Inverse of `index`.
    preds: Vec<Symbol>,
    /// Adjacency: for each node, `(target, kind)` edges.
    edges: Vec<Vec<(usize, EdgeKind)>>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `p` is a node, returning its dense index.
    pub fn add_node(&mut self, p: Symbol) -> usize {
        if let Some(&i) = self.index.get(&p) {
            return i;
        }
        let i = self.preds.len();
        self.index.insert(p, i);
        self.preds.push(p);
        self.edges.push(Vec::new());
        i
    }

    /// Adds an edge `from → to` with the given polarity.
    pub fn add_edge(&mut self, from: Symbol, to: Symbol, kind: EdgeKind) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        if !self.edges[f].contains(&(t, kind)) {
            self.edges[f].push((t, kind));
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The predicate at dense index `i`.
    pub fn pred(&self, i: usize) -> Symbol {
        self.preds[i]
    }

    /// The dense index of `p`, if it occurs.
    pub fn node(&self, p: Symbol) -> Option<usize> {
        self.index.get(&p).copied()
    }

    /// Outgoing edges of node `i`.
    pub fn edges_of(&self, i: usize) -> &[(usize, EdgeKind)] {
        &self.edges[i]
    }

    /// Computes strongly connected components with Tarjan's algorithm
    /// (iterative, so deep recursion chains cannot overflow the stack).
    ///
    /// Returns `(component-id per node, number of components)`. Component
    /// ids are in reverse topological order of the condensation: if there
    /// is an edge `u → v` with `scc[u] != scc[v]`, then `scc[u] > scc[v]`.
    pub fn sccs(&self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut index_of = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        // Explicit DFS frames: (node, edge cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index_of[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            index_of[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < self.edges[v].len() {
                    let (w, _) = self.edges[v][*cursor];
                    *cursor += 1;
                    if index_of[w] == usize::MAX {
                        index_of[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index_of[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index_of[v] {
                        // v is the root of an SCC.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        (comp, next_comp)
    }

    /// Whether some cycle in the graph passes through a negative edge.
    ///
    /// Returns the offending `(from, to)` predicates if so. This is the
    /// stratified-negation test: a program is stratifiable iff no SCC
    /// contains a negative edge.
    pub fn negative_cycle(&self) -> Option<(Symbol, Symbol)> {
        let (comp, _) = self.sccs();
        for u in 0..self.len() {
            for &(v, kind) in &self.edges[u] {
                if kind == EdgeKind::Negative && comp[u] == comp[v] {
                    return Some((self.preds[u], self.preds[v]));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn sccs_of_a_cycle() {
        let mut g = DepGraph::new();
        g.add_edge(s(0), s(1), EdgeKind::Positive);
        g.add_edge(s(1), s(0), EdgeKind::Positive);
        g.add_edge(s(1), s(2), EdgeKind::Positive);
        let (comp, n) = g.sccs();
        assert_eq!(n, 2);
        let i0 = g.node(s(0)).unwrap();
        let i1 = g.node(s(1)).unwrap();
        let i2 = g.node(s(2)).unwrap();
        assert_eq!(comp[i0], comp[i1]);
        assert_ne!(comp[i0], comp[i2]);
        // Reverse topological order: the sink {2} gets a smaller id.
        assert!(comp[i2] < comp[i0]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let mut g = DepGraph::new();
        g.add_edge(s(0), s(0), EdgeKind::Positive);
        g.add_node(s(1));
        let (comp, n) = g.sccs();
        assert_eq!(n, 2);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn negative_cycle_detection() {
        // 0 -~-> 1 --> 0 : negation inside a cycle.
        let mut g = DepGraph::new();
        g.add_edge(s(0), s(1), EdgeKind::Negative);
        g.add_edge(s(1), s(0), EdgeKind::Positive);
        assert!(g.negative_cycle().is_some());

        // 0 -~-> 1, 1 --> 2 : negation but acyclic.
        let mut g = DepGraph::new();
        g.add_edge(s(0), s(1), EdgeKind::Negative);
        g.add_edge(s(1), s(2), EdgeKind::Positive);
        assert!(g.negative_cycle().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-node chain exercises the iterative DFS.
        let mut g = DepGraph::new();
        for i in 0..10_000u32 {
            g.add_edge(s(i), s(i + 1), EdgeKind::Positive);
        }
        let (_, n) = g.sccs();
        assert_eq!(n, 10_001);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = DepGraph::new();
        g.add_edge(s(0), s(1), EdgeKind::Positive);
        g.add_edge(s(0), s(1), EdgeKind::Positive);
        g.add_edge(s(0), s(1), EdgeKind::Negative);
        assert_eq!(g.edges_of(g.node(s(0)).unwrap()).len(), 2);
    }
}
