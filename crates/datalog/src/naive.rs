//! Naive bottom-up evaluation: fire every rule against the whole database
//! until no stratum produces a new fact.
//!
//! Kept as the simplest-possible reference implementation; the semi-naive
//! engine ([`crate::seminaive`]) must produce identical models (ablation
//! experiment E10 measures the difference in work).

use crate::ast::Rule;
use crate::eval::{active_domain, fire_rule};
use crate::stratify::{stratify, Stratification};
use hdl_base::{Database, Result, Symbol};

/// Computes the perfect model of `rules` over `edb` by naive iteration.
///
/// Returns the model (EDB plus all derived facts). Fails if the program is
/// not stratified.
pub fn evaluate(rules: &[Rule], edb: &Database) -> Result<Database> {
    let strat = stratify(rules)?;
    Ok(evaluate_stratified(rules, edb, &strat))
}

/// Like [`evaluate`], with a precomputed stratification.
pub fn evaluate_stratified(rules: &[Rule], edb: &Database, strat: &Stratification) -> Database {
    let domain = active_domain(rules, edb);
    let mut model = edb.clone();
    for stratum_rules in strat.rules_by_stratum(rules) {
        loop {
            let mut fresh = Vec::new();
            for rule in &stratum_rules {
                fire_rule(rule, &model, None, &domain, &mut |fact| {
                    if !model.contains(&fact) {
                        fresh.push(fact);
                    }
                });
            }
            let mut changed = false;
            for fact in fresh {
                changed |= model.insert(fact);
            }
            if !changed {
                break;
            }
        }
    }
    model
}

/// Convenience: evaluate and project the tuples of one predicate.
pub fn query(rules: &[Rule], edb: &Database, pred: Symbol) -> Result<Vec<Vec<Symbol>>> {
    let model = evaluate(rules, edb)?;
    let mut out: Vec<Vec<Symbol>> = model.tuples(pred).map(|t| t.to_vec()).collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;
    use hdl_base::{Atom, GroundAtom, Term, Var};

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }
    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(s(p), args.iter().map(|&a| s(a)).collect())
    }

    /// tc = transitive closure of edge (pred 1 -> pred 0).
    fn tc_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                Atom::new(s(0), vec![v(0), v(1)]),
                vec![Literal::Pos(Atom::new(s(1), vec![v(0), v(1)]))],
            ),
            Rule::new(
                Atom::new(s(0), vec![v(0), v(2)]),
                vec![
                    Literal::Pos(Atom::new(s(1), vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(s(0), vec![v(1), v(2)])),
                ],
            ),
        ]
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut edb = Database::new();
        for i in 0..4 {
            edb.insert(fact(1, &[i, i + 1]));
        }
        let tc = query(&tc_rules(), &edb, s(0)).unwrap();
        // 5 nodes in a chain: C(5,2) = 10 ordered reachable pairs.
        assert_eq!(tc.len(), 10);
        assert!(tc.contains(&vec![s(0), s(4)]));
        assert!(!tc.contains(&vec![s(4), s(0)]));
    }

    #[test]
    fn transitive_closure_of_a_cycle_saturates() {
        let mut edb = Database::new();
        edb.insert(fact(1, &[0, 1]));
        edb.insert(fact(1, &[1, 2]));
        edb.insert(fact(1, &[2, 0]));
        let tc = query(&tc_rules(), &edb, s(0)).unwrap();
        assert_eq!(tc.len(), 9, "every pair reachable in a 3-cycle");
    }

    #[test]
    fn stratified_negation_complement() {
        // unreachable(X,Y) :- node(X), node(Y), ~tc(X,Y).
        let mut rules = tc_rules();
        rules.push(Rule::new(
            Atom::new(s(2), vec![v(0), v(1)]),
            vec![
                Literal::Pos(Atom::new(s(3), vec![v(0)])),
                Literal::Pos(Atom::new(s(3), vec![v(1)])),
                Literal::Neg(Atom::new(s(0), vec![v(0), v(1)])),
            ],
        ));
        let mut edb = Database::new();
        edb.insert(fact(1, &[0, 1]));
        for i in 0..3 {
            edb.insert(fact(3, &[i]));
        }
        let un = query(&rules, &edb, s(2)).unwrap();
        // 9 pairs total, 1 reachable (0->1): 8 unreachable.
        assert_eq!(un.len(), 8);
        assert!(!un.contains(&vec![s(0), s(1)]));
    }

    #[test]
    fn facts_as_rules_with_empty_bodies() {
        let rules = vec![Rule::new(Atom::new(s(0), vec![Term::Const(s(7))]), vec![])];
        let model = evaluate(&rules, &Database::new()).unwrap();
        assert!(model.contains(&fact(0, &[7])));
    }

    #[test]
    fn empty_program_returns_edb() {
        let mut edb = Database::new();
        edb.insert(fact(0, &[1]));
        let model = evaluate(&[], &edb).unwrap();
        assert_eq!(model, edb);
    }
}
