//! Abstract syntax of plain Datalog with stratified negation.

use hdl_base::{Atom, Symbol, Var};

/// A body literal: a positive or negated atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Literal {
    /// `p(t̄)` — must be provable.
    Pos(Atom),
    /// `~p(t̄)` — must not be provable (negation as failure).
    Neg(Atom),
}

impl Literal {
    /// The underlying atom.
    pub fn atom(&self) -> &Atom {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a,
        }
    }

    /// Whether this literal is negated.
    pub fn is_negative(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }
}

/// A Datalog rule `head ← body₁, …, bodyₙ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals, evaluated conjunctively.
    pub body: Vec<Literal>,
    /// Number of distinct variables in the rule (variables are numbered
    /// densely `0..num_vars`).
    pub num_vars: usize,
}

impl Rule {
    /// Builds a rule, computing `num_vars` from the maximum variable index.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        let max = head
            .vars()
            .chain(body.iter().flat_map(|l| l.atom().vars()))
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        Rule {
            head,
            body,
            num_vars: max,
        }
    }

    /// Whether the rule has an empty body (a fact schema).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Iterates over all variables in the rule (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.head
            .vars()
            .chain(self.body.iter().flat_map(|l| l.atom().vars()))
    }

    /// The predicates occurring positively in the body.
    pub fn positive_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a.pred),
            Literal::Neg(_) => None,
        })
    }

    /// The predicates occurring negatively in the body.
    pub fn negative_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a.pred),
            Literal::Pos(_) => None,
        })
    }

    /// Range restriction (safety) check: every head variable and every
    /// variable of a negated literal must occur in some positive literal.
    ///
    /// Unsafe rules are still *evaluable* under the active-domain semantics
    /// used by the engines, but safe rules evaluate without domain
    /// enumeration; the engines use this to pick the fast path.
    pub fn is_safe(&self) -> bool {
        let positive: Vec<Var> = self
            .body
            .iter()
            .filter(|l| !l.is_negative())
            .flat_map(|l| l.atom().vars())
            .collect();
        let covered = |v: Var| positive.contains(&v);
        self.head.vars().all(covered)
            && self
                .body
                .iter()
                .filter(|l| l.is_negative())
                .all(|l| l.atom().vars().all(covered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::Term;

    fn atom(p: u32, args: &[Term]) -> Atom {
        Atom::new(Symbol(p), args.to_vec())
    }
    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn c(i: u32) -> Term {
        Term::Const(Symbol(i))
    }

    #[test]
    fn num_vars_counts_distinct_indices() {
        let r = Rule::new(atom(0, &[v(0)]), vec![Literal::Pos(atom(1, &[v(0), v(2)]))]);
        assert_eq!(r.num_vars, 3); // dense numbering up to max index
    }

    #[test]
    fn safety() {
        // p(X) :- q(X).           safe
        let safe = Rule::new(atom(0, &[v(0)]), vec![Literal::Pos(atom(1, &[v(0)]))]);
        assert!(safe.is_safe());
        // p(X) :- q(Y).           unsafe head var
        let unsafe_head = Rule::new(atom(0, &[v(0)]), vec![Literal::Pos(atom(1, &[v(1)]))]);
        assert!(!unsafe_head.is_safe());
        // p(X) :- q(X), ~r(Y).    unsafe negated var
        let unsafe_neg = Rule::new(
            atom(0, &[v(0)]),
            vec![
                Literal::Pos(atom(1, &[v(0)])),
                Literal::Neg(atom(2, &[v(1)])),
            ],
        );
        assert!(!unsafe_neg.is_safe());
        // p(a) :- .               ground fact is safe
        let fact = Rule::new(atom(0, &[c(1)]), vec![]);
        assert!(fact.is_safe());
        assert!(fact.is_fact());
    }

    #[test]
    fn pred_iterators() {
        let r = Rule::new(
            atom(0, &[v(0)]),
            vec![
                Literal::Pos(atom(1, &[v(0)])),
                Literal::Neg(atom(2, &[v(0)])),
            ],
        );
        assert_eq!(r.positive_preds().collect::<Vec<_>>(), vec![Symbol(1)]);
        assert_eq!(r.negative_preds().collect::<Vec<_>>(), vec![Symbol(2)]);
    }
}
