//! Stratification of Datalog programs with negation ([1] in the paper).
//!
//! A program is *stratified* if no cycle of the predicate dependency graph
//! passes through a negative edge. The stratification assigns each predicate
//! a stratum number such that positive dependencies stay within or below the
//! stratum and negative dependencies go strictly below; evaluation then
//! proceeds stratum by stratum, closing each under its rules before any
//! negation over it is tested.

use crate::ast::Rule;
use crate::depgraph::{DepGraph, EdgeKind};
use hdl_base::{Error, FxHashMap, Result, Symbol};

/// The result of stratifying a program.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum of each predicate that occurs in the program.
    pub stratum_of: FxHashMap<Symbol, usize>,
    /// Number of strata (maximum stratum + 1; 0 for an empty program).
    pub num_strata: usize,
}

impl Stratification {
    /// The stratum of `p`, defaulting to 0 for predicates that never occur
    /// (pure EDB predicates mentioned only in the database).
    pub fn stratum(&self, p: Symbol) -> usize {
        self.stratum_of.get(&p).copied().unwrap_or(0)
    }

    /// Groups rule indices by the stratum of their head predicate.
    pub fn rules_by_stratum<'r>(&self, rules: &'r [Rule]) -> Vec<Vec<&'r Rule>> {
        let mut out: Vec<Vec<&Rule>> = vec![Vec::new(); self.num_strata.max(1)];
        for r in rules {
            out[self.stratum(r.head.pred)].push(r);
        }
        out
    }
}

/// Builds the dependency graph of `rules`.
pub fn dependency_graph(rules: &[Rule]) -> DepGraph {
    let mut g = DepGraph::new();
    for r in rules {
        g.add_node(r.head.pred);
        for p in r.positive_preds() {
            g.add_edge(r.head.pred, p, EdgeKind::Positive);
        }
        for p in r.negative_preds() {
            g.add_edge(r.head.pred, p, EdgeKind::Negative);
        }
    }
    g
}

/// Stratifies `rules`, or reports the negative cycle that prevents it.
pub fn stratify(rules: &[Rule]) -> Result<Stratification> {
    let g = dependency_graph(rules);
    if let Some((from, to)) = g.negative_cycle() {
        return Err(Error::NotStratified {
            cycle: format!("predicate #{} negates #{} inside a cycle", from.0, to.0),
        });
    }
    let (comp, ncomp) = g.sccs();
    // Component ids are in reverse topological order, so ascending id order
    // processes dependency targets before their sources.
    let mut comp_stratum = vec![0usize; ncomp];
    let mut nodes_by_comp: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (node, &c) in comp.iter().enumerate() {
        nodes_by_comp[c].push(node);
    }
    for c in 0..ncomp {
        let mut stratum = 0usize;
        for &u in &nodes_by_comp[c] {
            for &(v, kind) in g.edges_of(u) {
                let cv = comp[v];
                if cv == c {
                    continue; // intra-component edges are positive (checked above)
                }
                let need = comp_stratum[cv] + usize::from(kind == EdgeKind::Negative);
                stratum = stratum.max(need);
            }
        }
        comp_stratum[c] = stratum;
    }
    let mut stratum_of = FxHashMap::default();
    let mut max = 0usize;
    for node in 0..g.len() {
        let st = comp_stratum[comp[node]];
        max = max.max(st);
        stratum_of.insert(g.pred(node), st);
    }
    let num_strata = if g.is_empty() { 0 } else { max + 1 };
    Ok(Stratification {
        stratum_of,
        num_strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;
    use hdl_base::{Atom, Term, Var};

    fn atom(p: u32, nargs: usize) -> Atom {
        Atom::new(
            Symbol(p),
            (0..nargs).map(|i| Term::Var(Var(i as u32))).collect(),
        )
    }

    #[test]
    fn positive_program_is_one_stratum() {
        // tc(X,Y) :- e(X,Y).  tc(X,Z) :- e(X,Y), tc(Y,Z).
        let rules = vec![
            Rule::new(atom(0, 2), vec![Literal::Pos(atom(1, 2))]),
            Rule::new(
                atom(0, 2),
                vec![Literal::Pos(atom(1, 2)), Literal::Pos(atom(0, 2))],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.num_strata, 1);
        assert_eq!(s.stratum(Symbol(0)), 0);
        assert_eq!(s.stratum(Symbol(1)), 0);
    }

    #[test]
    fn negation_pushes_up_a_stratum() {
        // p(X) :- d(X), ~q(X).   q(X) :- e(X).
        let rules = vec![
            Rule::new(
                atom(0, 1),
                vec![Literal::Pos(atom(3, 1)), Literal::Neg(atom(1, 1))],
            ),
            Rule::new(atom(1, 1), vec![Literal::Pos(atom(2, 1))]),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.stratum(Symbol(1)), 0);
        assert_eq!(s.stratum(Symbol(0)), 1);
        assert_eq!(s.num_strata, 2);
    }

    #[test]
    fn chained_negation_gives_three_strata() {
        // p :- ~q.  q :- ~r.  r :- base.
        let rules = vec![
            Rule::new(atom(0, 0), vec![Literal::Neg(atom(1, 0))]),
            Rule::new(atom(1, 0), vec![Literal::Neg(atom(2, 0))]),
            Rule::new(atom(2, 0), vec![Literal::Pos(atom(3, 0))]),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.stratum(Symbol(2)), 0);
        assert_eq!(s.stratum(Symbol(1)), 1);
        assert_eq!(s.stratum(Symbol(0)), 2);
        assert_eq!(s.num_strata, 3);
    }

    #[test]
    fn recursion_through_negation_is_rejected() {
        // a :- ~b.  b :- ~a.   (the paper's ambiguous example, section 3.1)
        let rules = vec![
            Rule::new(atom(0, 0), vec![Literal::Neg(atom(1, 0))]),
            Rule::new(atom(1, 0), vec![Literal::Neg(atom(0, 0))]),
        ];
        assert!(matches!(stratify(&rules), Err(Error::NotStratified { .. })));
    }

    #[test]
    fn rules_by_stratum_groups_heads() {
        let rules = vec![
            Rule::new(atom(0, 0), vec![Literal::Neg(atom(1, 0))]),
            Rule::new(atom(1, 0), vec![Literal::Pos(atom(2, 0))]),
        ];
        let s = stratify(&rules).unwrap();
        let grouped = s.rules_by_stratum(&rules);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 1);
        assert_eq!(grouped[0][0].head.pred, Symbol(1));
        assert_eq!(grouped[1][0].head.pred, Symbol(0));
    }

    #[test]
    fn empty_program() {
        let s = stratify(&[]).unwrap();
        assert_eq!(s.num_strata, 0);
        assert_eq!(s.stratum(Symbol(42)), 0);
    }
}
