//! Magic-sets transformation for goal-directed bottom-up evaluation.
//!
//! The paper's linearity discussion cites Bancilhon & Ramakrishnan's
//! survey ([2]) for the claim that "algorithms have been developed to
//! handle [linear rules] efficiently" — magic sets being the canonical
//! such algorithm. This module implements the standard transformation for
//! **negation-free** programs with a left-to-right sideways information
//! passing strategy:
//!
//! 1. *Adorn* the query predicate with a bound/free pattern from the
//!    query's constants and propagate adornments through rule bodies.
//! 2. For each adorned rule `pᵃ ← q₁,…,qₙ` and each IDB body atom `qᵢ`,
//!    emit a *magic rule* `magic_qᵢᵃⁱ ← magic_pᵃ, q₁,…,qᵢ₋₁` feeding the
//!    bound arguments of `qᵢ`.
//! 3. Guard each adorned rule with its own magic predicate:
//!    `pᵃ ← magic_pᵃ, q₁,…,qₙ`.
//! 4. Seed `magic_queryᵃ` with the query's bound constants.
//!
//! Semi-naive evaluation of the transformed program then derives only
//! facts relevant to the query — the bottom-up analogue of the
//! hypothetical engine's top-down tabling. Experiment E10's ablation
//! measures the win on point queries.

use crate::ast::{Literal, Rule};
use crate::seminaive;
use hdl_base::{
    Atom, Database, Error, FxHashMap, FxHashSet, GroundAtom, Result, Symbol, SymbolTable, Term, Var,
};

/// A bound/free adornment, one flag per argument (`true` = bound).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    fn suffix(&self) -> String {
        self.0.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
    }
}

/// The output of the transformation.
pub struct MagicProgram {
    /// The rewritten rules (adorned + magic + guard rules).
    pub rules: Vec<Rule>,
    /// Seed facts (the magic tuple for the query).
    pub seeds: Vec<GroundAtom>,
    /// The adorned predicate to read answers from.
    pub answer_pred: Symbol,
}

/// A query: predicate applied to constants (bound) and wildcards (free).
#[derive(Clone, Debug)]
pub struct PointQuery {
    /// Queried predicate.
    pub pred: Symbol,
    /// `Some(c)` = bound to constant `c`; `None` = free.
    pub args: Vec<Option<Symbol>>,
}

impl PointQuery {
    fn adornment(&self) -> Adornment {
        Adornment(self.args.iter().map(|a| a.is_some()).collect())
    }
}

/// Applies the magic-sets transformation of `rules` for `query`.
///
/// Fails on programs with negation (the classical transformation is
/// unsound under NAF without further stratification surgery).
pub fn magic_transform(
    rules: &[Rule],
    query: &PointQuery,
    syms: &mut SymbolTable,
) -> Result<MagicProgram> {
    if rules.iter().any(|r| r.body.iter().any(|l| l.is_negative())) {
        return Err(Error::Invalid(
            "magic sets: negation-free programs only".into(),
        ));
    }
    let idb: FxHashSet<Symbol> = rules.iter().map(|r| r.head.pred).collect();

    let mut out_rules: Vec<Rule> = Vec::new();
    let mut adorned_name: FxHashMap<(Symbol, Adornment), Symbol> = FxHashMap::default();
    let mut magic_name: FxHashMap<(Symbol, Adornment), Symbol> = FxHashMap::default();
    let mut worklist: Vec<(Symbol, Adornment)> = vec![(query.pred, query.adornment())];
    let mut done: FxHashSet<(Symbol, Adornment)> = FxHashSet::default();

    let intern_adorned = |syms: &mut SymbolTable,
                          map: &mut FxHashMap<(Symbol, Adornment), Symbol>,
                          prefix: &str,
                          p: Symbol,
                          a: &Adornment| {
        if let Some(&s) = map.get(&(p, a.clone())) {
            return s;
        }
        let name = format!("{prefix}{}__{}", syms.name(p).to_owned(), a.suffix());
        let s = syms.intern(&name);
        map.insert((p, a.clone()), s);
        s
    };

    while let Some((pred, adornment)) = worklist.pop() {
        if !done.insert((pred, adornment.clone())) {
            continue;
        }
        let adorned_head = intern_adorned(syms, &mut adorned_name, "", pred, &adornment);
        let magic_head = intern_adorned(syms, &mut magic_name, "m__", pred, &adornment);
        let bound_count = adornment.0.iter().filter(|&&b| b).count();

        for rule in rules.iter().filter(|r| r.head.pred == pred) {
            // Bound variables flow left to right: head-bound args first.
            let mut bound_vars: FxHashSet<Var> = FxHashSet::default();
            for (arg, &is_bound) in rule.head.args.iter().zip(&adornment.0) {
                if is_bound {
                    if let Term::Var(v) = arg {
                        bound_vars.insert(*v);
                    }
                }
            }

            // Guard atom: magic_p(bound head args).
            let magic_args: Vec<Term> = rule
                .head
                .args
                .iter()
                .zip(&adornment.0)
                .filter(|(_, &b)| b)
                .map(|(t, _)| *t)
                .collect();
            debug_assert_eq!(magic_args.len(), bound_count);
            let guard = Literal::Pos(Atom::new(magic_head, magic_args.clone()));

            let mut new_body: Vec<Literal> = vec![guard.clone()];
            let mut prefix_for_magic: Vec<Literal> = vec![guard];

            for lit in &rule.body {
                let Literal::Pos(atom) = lit else {
                    unreachable!()
                };
                if idb.contains(&atom.pred) {
                    // Adorn by current boundness.
                    let sub_adornment = Adornment(
                        atom.args
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => bound_vars.contains(v),
                            })
                            .collect(),
                    );
                    let sub_name =
                        intern_adorned(syms, &mut adorned_name, "", atom.pred, &sub_adornment);
                    let sub_magic =
                        intern_adorned(syms, &mut magic_name, "m__", atom.pred, &sub_adornment);
                    // Magic rule: m_q(bound args) :- magic_p, prefix.
                    let m_args: Vec<Term> = atom
                        .args
                        .iter()
                        .zip(&sub_adornment.0)
                        .filter(|(_, &b)| b)
                        .map(|(t, _)| *t)
                        .collect();
                    out_rules.push(Rule::new(
                        Atom::new(sub_magic, m_args),
                        prefix_for_magic.clone(),
                    ));
                    worklist.push((atom.pred, sub_adornment));
                    let adorned_atom = Atom::new(sub_name, atom.args.clone());
                    new_body.push(Literal::Pos(adorned_atom.clone()));
                    prefix_for_magic.push(Literal::Pos(adorned_atom));
                } else {
                    new_body.push(lit.clone());
                    prefix_for_magic.push(lit.clone());
                }
                for v in atom.vars() {
                    bound_vars.insert(v);
                }
            }

            out_rules.push(Rule::new(
                Atom::new(adorned_head, rule.head.args.clone()),
                new_body,
            ));
        }
    }

    // Seed fact: m__query(bound constants).
    let magic_query = magic_name[&(query.pred, query.adornment())];
    let seed_args: Vec<Symbol> = query.args.iter().filter_map(|a| *a).collect();
    let seeds = vec![GroundAtom::new(magic_query, seed_args)];
    let answer_pred = adorned_name[&(query.pred, query.adornment())];

    Ok(MagicProgram {
        rules: out_rules,
        seeds,
        answer_pred,
    })
}

/// Evaluates `query` with magic sets over `edb`; returns the matching
/// tuples (full tuples of the queried predicate), sorted.
pub fn magic_query(
    rules: &[Rule],
    edb: &Database,
    query: &PointQuery,
    syms: &mut SymbolTable,
) -> Result<Vec<Vec<Symbol>>> {
    let program = magic_transform(rules, query, syms)?;
    let mut db = edb.clone();
    for s in &program.seeds {
        db.insert(s.clone());
    }
    let model = seminaive::evaluate(&program.rules, &db)?;
    let mut out: Vec<Vec<Symbol>> = model
        .tuples(program.answer_pred)
        .filter(|t| {
            t.iter()
                .zip(&query.args)
                .all(|(&v, a)| a.is_none_or(|c| c == v))
        })
        .map(|t| t.to_vec())
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    /// tc over e, with the standard left-linear rules.
    fn setup(n: usize) -> (Vec<Rule>, Database, SymbolTable, Symbol, Vec<Symbol>) {
        let mut syms = SymbolTable::new();
        let tc = syms.intern("tc");
        let e = syms.intern("e");
        let rules = vec![
            Rule::new(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)]))],
            ),
            Rule::new(
                Atom::new(tc, vec![v(0), v(2)]),
                vec![
                    Literal::Pos(Atom::new(e, vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(tc, vec![v(1), v(2)])),
                ],
            ),
        ];
        let nodes: Vec<Symbol> = (0..n).map(|i| syms.intern(&format!("v{i}"))).collect();
        let mut db = Database::new();
        for w in nodes.windows(2) {
            db.insert(GroundAtom::new(e, vec![w[0], w[1]]));
        }
        (rules, db, syms, tc, nodes)
    }

    #[test]
    fn bound_free_query_matches_full_evaluation() {
        let (rules, db, mut syms, tc, nodes) = setup(6);
        // tc(v0, X)?
        let q = PointQuery {
            pred: tc,
            args: vec![Some(nodes[0]), None],
        };
        let magic = magic_query(&rules, &db, &q, &mut syms).unwrap();
        let full = naive::query(&rules, &db, tc).unwrap();
        let expected: Vec<Vec<Symbol>> = full.into_iter().filter(|t| t[0] == nodes[0]).collect();
        assert_eq!(magic, expected);
        assert_eq!(magic.len(), 5, "v0 reaches all 5 others");
    }

    #[test]
    fn bound_bound_query() {
        let (rules, db, mut syms, tc, nodes) = setup(5);
        let q = PointQuery {
            pred: tc,
            args: vec![Some(nodes[1]), Some(nodes[4])],
        };
        let found = magic_query(&rules, &db, &q, &mut syms).unwrap();
        assert_eq!(found, vec![vec![nodes[1], nodes[4]]]);
        // And the unreachable direction:
        let q = PointQuery {
            pred: tc,
            args: vec![Some(nodes[4]), Some(nodes[1])],
        };
        let found = magic_query(&rules, &db, &q, &mut syms).unwrap();
        assert!(found.is_empty());
    }

    #[test]
    fn magic_derives_fewer_facts_than_full_evaluation() {
        // The whole point: on a chain, asking tc(v_{n-2}, X) should not
        // materialize the full closure.
        let (rules, db, mut syms, tc, nodes) = setup(30);
        let q = PointQuery {
            pred: tc,
            args: vec![Some(nodes[28]), None],
        };
        let program = magic_transform(&rules, &q, &mut syms).unwrap();
        let mut seeded = db.clone();
        for s in &program.seeds {
            seeded.insert(s.clone());
        }
        let magic_model = seminaive::evaluate(&program.rules, &seeded).unwrap();
        let full_model = naive::evaluate(&rules, &db).unwrap();
        let full_tc = full_model.count(tc);
        let magic_total: usize = magic_model.len();
        assert_eq!(full_tc, 30 * 29 / 2);
        assert!(
            magic_total < full_tc,
            "magic evaluation ({magic_total} facts incl. EDB) must beat \
             the full closure ({full_tc} tc facts)"
        );
    }

    #[test]
    fn free_free_query_degenerates_to_full() {
        let (rules, db, mut syms, tc, _) = setup(5);
        let q = PointQuery {
            pred: tc,
            args: vec![None, None],
        };
        let magic = magic_query(&rules, &db, &q, &mut syms).unwrap();
        let full = naive::query(&rules, &db, tc).unwrap();
        assert_eq!(magic, full);
    }

    #[test]
    fn same_generation_with_magic() {
        let mut syms = SymbolTable::new();
        let sg = syms.intern("sg");
        let flat = syms.intern("flat");
        let up = syms.intern("up");
        let down = syms.intern("down");
        let rules = vec![
            Rule::new(
                Atom::new(sg, vec![v(0), v(1)]),
                vec![Literal::Pos(Atom::new(flat, vec![v(0), v(1)]))],
            ),
            Rule::new(
                Atom::new(sg, vec![v(0), v(1)]),
                vec![
                    Literal::Pos(Atom::new(up, vec![v(0), v(2)])),
                    Literal::Pos(Atom::new(sg, vec![v(2), v(3)])),
                    Literal::Pos(Atom::new(down, vec![v(3), v(1)])),
                ],
            ),
        ];
        let names: Vec<Symbol> = ["l1", "l2", "p1", "p2"]
            .iter()
            .map(|s| syms.intern(s))
            .collect();
        let (l1, l2, p1, p2) = (names[0], names[1], names[2], names[3]);
        let mut db = Database::new();
        db.insert(GroundAtom::new(up, vec![l1, p1]));
        db.insert(GroundAtom::new(up, vec![l2, p2]));
        db.insert(GroundAtom::new(down, vec![p1, l1]));
        db.insert(GroundAtom::new(down, vec![p2, l2]));
        db.insert(GroundAtom::new(flat, vec![p1, p2]));
        let q = PointQuery {
            pred: sg,
            args: vec![Some(l1), None],
        };
        let found = magic_query(&rules, &db, &q, &mut syms).unwrap();
        assert_eq!(found, vec![vec![l1, l2]]);
    }

    #[test]
    fn negation_is_rejected() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let rules = vec![Rule::new(
            Atom::new(p, vec![v(0)]),
            vec![Literal::Neg(Atom::new(q, vec![v(0)]))],
        )];
        let query = PointQuery {
            pred: p,
            args: vec![None],
        };
        assert!(magic_transform(&rules, &query, &mut syms).is_err());
    }
}
