//! Semi-naive bottom-up evaluation.
//!
//! Within each stratum, recursive rules are fired only against the *delta*
//! (facts derived in the previous round): for every positive body literal
//! whose predicate belongs to the current stratum, a differential variant
//! of the rule is fired with that literal constrained to the delta. This
//! avoids rediscovering all earlier consequences each round — the classic
//! optimization the paper's reference [2] (Bancilhon & Ramakrishnan)
//! surveys for linear recursion.

use crate::ast::Rule;
use crate::eval::{active_domain, fire_rule};
use crate::stratify::{stratify, Stratification};
use hdl_base::{Database, FxHashSet, Result, Symbol};

/// Work counters for the ablation experiment (naive vs semi-naive, E10).
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of rule firings (one per `fire_rule` call).
    pub rule_firings: u64,
    /// Number of facts emitted by rule bodies (before dedup).
    pub facts_emitted: u64,
    /// Number of fixpoint rounds across all strata.
    pub rounds: u64,
}

/// Computes the perfect model of `rules` over `edb` semi-naively.
///
/// ```
/// use hdl_base::{Atom, Database, GroundAtom, SymbolTable, Term, Var};
/// use hdl_datalog::{seminaive, Literal, Rule};
/// let mut syms = SymbolTable::new();
/// let (tc, e) = (syms.intern("tc"), syms.intern("e"));
/// let v = |i| Term::Var(Var(i));
/// let rules = vec![
///     Rule::new(Atom::new(tc, vec![v(0), v(1)]),
///               vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)]))]),
///     Rule::new(Atom::new(tc, vec![v(0), v(2)]),
///               vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)])),
///                    Literal::Pos(Atom::new(tc, vec![v(1), v(2)]))]),
/// ];
/// let (a, b, c) = (syms.intern("a"), syms.intern("b"), syms.intern("c"));
/// let mut edb = Database::new();
/// edb.insert(GroundAtom::new(e, vec![a, b]));
/// edb.insert(GroundAtom::new(e, vec![b, c]));
/// let model = seminaive::evaluate(&rules, &edb).unwrap();
/// assert!(model.contains(&GroundAtom::new(tc, vec![a, c])));
/// ```
pub fn evaluate(rules: &[Rule], edb: &Database) -> Result<Database> {
    let strat = stratify(rules)?;
    Ok(evaluate_stratified(rules, edb, &strat).0)
}

/// Like [`evaluate`] but with a precomputed stratification; also returns
/// work counters.
pub fn evaluate_stratified(
    rules: &[Rule],
    edb: &Database,
    strat: &Stratification,
) -> (Database, EvalStats) {
    let domain = active_domain(rules, edb);
    let mut stats = EvalStats::default();
    let mut model = edb.clone();
    for (stratum, stratum_rules) in strat.rules_by_stratum(rules).into_iter().enumerate() {
        // Predicates defined in this stratum: occurrences of these in rule
        // bodies are the recursive positions that need delta variants.
        let local: FxHashSet<Symbol> = stratum_rules
            .iter()
            .map(|r| r.head.pred)
            .filter(|&p| strat.stratum(p) == stratum)
            .collect();

        // Round 0: fire every rule once against the current model.
        let mut delta = Database::new();
        for rule in &stratum_rules {
            stats.rule_firings += 1;
            fire_rule(rule, &model, None, &domain, &mut |fact| {
                stats.facts_emitted += 1;
                if !model.contains(&fact) {
                    delta.insert(fact);
                }
            });
        }
        stats.rounds += 1;
        for f in delta.iter_facts() {
            model.insert(f);
        }

        // Differential rounds.
        while !delta.is_empty() {
            let mut next_delta = Database::new();
            for rule in &stratum_rules {
                for (pos, lit) in rule.body.iter().enumerate() {
                    let is_recursive_pos = match lit {
                        crate::ast::Literal::Pos(a) => local.contains(&a.pred),
                        crate::ast::Literal::Neg(_) => false,
                    };
                    if !is_recursive_pos {
                        continue;
                    }
                    stats.rule_firings += 1;
                    fire_rule(rule, &model, Some((&delta, pos)), &domain, &mut |fact| {
                        stats.facts_emitted += 1;
                        if !model.contains(&fact) && !next_delta.contains(&fact) {
                            next_delta.insert(fact);
                        }
                    });
                }
            }
            stats.rounds += 1;
            for f in next_delta.iter_facts() {
                model.insert(f);
            }
            delta = next_delta;
        }
    }
    (model, stats)
}

/// Convenience: evaluate and project the tuples of one predicate.
pub fn query(rules: &[Rule], edb: &Database, pred: Symbol) -> Result<Vec<Vec<Symbol>>> {
    let model = evaluate(rules, edb)?;
    let mut out: Vec<Vec<Symbol>> = model.tuples(pred).map(|t| t.to_vec()).collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;
    use crate::naive;
    use hdl_base::{Atom, GroundAtom, Term, Var};

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }
    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(s(p), args.iter().map(|&a| s(a)).collect())
    }

    fn tc_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                Atom::new(s(0), vec![v(0), v(1)]),
                vec![Literal::Pos(Atom::new(s(1), vec![v(0), v(1)]))],
            ),
            Rule::new(
                Atom::new(s(0), vec![v(0), v(2)]),
                vec![
                    Literal::Pos(Atom::new(s(1), vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(s(0), vec![v(1), v(2)])),
                ],
            ),
        ]
    }

    fn chain_edb(n: u32) -> Database {
        let mut edb = Database::new();
        for i in 0..n {
            edb.insert(fact(1, &[i, i + 1]));
        }
        edb
    }

    #[test]
    fn agrees_with_naive_on_transitive_closure() {
        let edb = chain_edb(6);
        let a = naive::evaluate(&tc_rules(), &edb).unwrap();
        let b = evaluate(&tc_rules(), &edb).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_naive_with_negation() {
        // sink(X) :- node(X), ~hasout(X).   hasout(X) :- e(X,Y).
        let rules = vec![
            Rule::new(
                Atom::new(s(2), vec![v(0)]),
                vec![
                    Literal::Pos(Atom::new(s(3), vec![v(0)])),
                    Literal::Neg(Atom::new(s(4), vec![v(0)])),
                ],
            ),
            Rule::new(
                Atom::new(s(4), vec![v(0)]),
                vec![Literal::Pos(Atom::new(s(1), vec![v(0), v(1)]))],
            ),
        ];
        let mut edb = chain_edb(3);
        for i in 0..4 {
            edb.insert(fact(3, &[i]));
        }
        let a = naive::evaluate(&rules, &edb).unwrap();
        let b = evaluate(&rules, &edb).unwrap();
        assert_eq!(a, b);
        assert!(b.contains(&fact(2, &[3])), "node 3 is the sink");
        assert_eq!(b.count(s(2)), 1);
    }

    #[test]
    fn seminaive_does_less_emission_work_on_long_chains() {
        let edb = chain_edb(24);
        let strat = stratify(&tc_rules()).unwrap();
        let (_, semi) = evaluate_stratified(&tc_rules(), &edb, &strat);
        // Count naive emissions by running rounds manually.
        let domain = crate::eval::active_domain(&tc_rules(), &edb);
        let mut model = edb.clone();
        let mut naive_emitted = 0u64;
        loop {
            let mut fresh = Vec::new();
            for rule in &tc_rules() {
                fire_rule(rule, &model, None, &domain, &mut |f| {
                    naive_emitted += 1;
                    if !model.contains(&f) {
                        fresh.push(f);
                    }
                });
            }
            let mut changed = false;
            for f in fresh {
                changed |= model.insert(f);
            }
            if !changed {
                break;
            }
        }
        assert!(
            semi.facts_emitted < naive_emitted,
            "semi-naive {} vs naive {}",
            semi.facts_emitted,
            naive_emitted
        );
    }

    #[test]
    fn mutual_recursion_within_a_stratum() {
        // even(X) :- zero(X).
        // even(Y) :- succ(X,Y), odd(X).
        // odd(Y)  :- succ(X,Y), even(X).
        let rules = vec![
            Rule::new(
                Atom::new(s(0), vec![v(0)]),
                vec![Literal::Pos(Atom::new(s(2), vec![v(0)]))],
            ),
            Rule::new(
                Atom::new(s(0), vec![v(1)]),
                vec![
                    Literal::Pos(Atom::new(s(3), vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(s(1), vec![v(0)])),
                ],
            ),
            Rule::new(
                Atom::new(s(1), vec![v(1)]),
                vec![
                    Literal::Pos(Atom::new(s(3), vec![v(0), v(1)])),
                    Literal::Pos(Atom::new(s(0), vec![v(0)])),
                ],
            ),
        ];
        let mut edb = Database::new();
        edb.insert(fact(2, &[0]));
        for i in 0..6 {
            edb.insert(fact(3, &[i, i + 1]));
        }
        let model = evaluate(&rules, &edb).unwrap();
        for i in 0..=6 {
            let even = model.contains(&fact(0, &[i]));
            let odd = model.contains(&fact(1, &[i]));
            assert_eq!(even, i % 2 == 0, "even({i})");
            assert_eq!(odd, i % 2 == 1, "odd({i})");
        }
        let nai = naive::evaluate(&rules, &edb).unwrap();
        assert_eq!(model, nai);
    }
}
