//! Theorem 1's lower bound, end to end: compile an oracle-machine cascade
//! into a hypothetical rulebase (§5.1) and check that logical inference
//! reproduces the machine's verdicts.
//!
//! Run with `cargo run --example turing_compile`.

use hdl_encodings::tm::encode;
use hdl_turing::library;
use hdl_turing::{Cascade, Sym};
use hypothetical_datalog::prelude::*;

fn main() {
    let s0 = Sym(0);
    let s1 = Sym(1);

    println!("== One NP machine (1 stratum): 'input contains a 1' ==\n");
    let cascade = Cascade::new(vec![library::contains_one()]).unwrap();
    for input in [vec![s0, s0, s1], vec![s0, s0, s0]] {
        let enc = encode(&cascade, &input, 6).expect("encodable");
        let ls = linear_stratification(&enc.rulebase).expect("linearly stratified");
        let mut engine = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        let derived = engine.holds(&enc.accept_query()).unwrap();
        let direct = cascade.accepts(&input, 6);
        println!(
            "input {:?}: rules={:<3} facts={:<3} strata={} | R(L),DB ⊢ accept: {derived}  \
             simulator: {direct}",
            input.iter().map(|s| s.0).collect::<Vec<_>>(),
            enc.rulebase.len(),
            enc.database.len(),
            ls.num_strata(),
        );
        assert_eq!(derived, direct);
    }

    println!("\n== A Σ₂ᴾ cascade (2 strata): guess a bit, ask the oracle ==\n");
    for (top, label) in [
        (library::write_then_ask(s1, true), "write 1, accept on YES"),
        (library::write_then_ask(s0, true), "write 0, accept on YES"),
        (
            library::write_then_ask(s0, false),
            "write 0, accept on NO (~ORACLE rule)",
        ),
    ] {
        let cascade = Cascade::new(vec![top, library::contains_one()]).unwrap();
        let enc = encode(&cascade, &[], 8).expect("encodable");
        let ls = linear_stratification(&enc.rulebase).expect("linearly stratified");
        let mut engine = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        let derived = engine.holds(&enc.accept_query()).unwrap();
        let direct = cascade.accepts(&[], 8);
        println!(
            "{label:<38} strata={} | derived: {derived}  simulator: {direct}",
            ls.num_strata()
        );
        assert_eq!(derived, direct);
    }

    println!("\nThe stratum count equals the oracle-cascade depth k — the");
    println!("syntactic measure Theorem 1 ties to Σₖᴾ.");
}
