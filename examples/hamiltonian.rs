//! Examples 7–8: Hamiltonian paths by hypothetical search.
//!
//! The rulebase records visited nodes by *hypothetically inserting*
//! `pnode` facts — the feature that makes hypothetical Datalog NP-hard
//! and that plain Datalog cannot express. Adding `no :- ~yes.` (Example
//! 8) pushes the rulebase to a second stratum and decides the complement.
//!
//! Run with `cargo run --example hamiltonian`.

use hypothetical_datalog::prelude::*;
use std::fmt::Write as _;

const RULES: &str = "
    yes :- node(X), path(X)[add: pnode(X)].
    path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
    path(X) :- ~select(Y).
    select(Y) :- node(Y), ~pnode(Y).
    no :- ~yes.
";

fn decide(name: &str, nodes: &[&str], edges: &[(&str, &str)]) {
    let mut src = String::from(RULES);
    for n in nodes {
        let _ = writeln!(src, "node({n}).");
    }
    for (a, b) in edges {
        let _ = writeln!(src, "edge({a}, {b}).");
    }
    let mut syms = SymbolTable::new();
    let program = parse_program(&src, &mut syms).expect("parses");
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();

    // The stratification analysis shows the Example 8 structure: the
    // search sits in stratum 1 (Σ), the complement rule in stratum 2 (Δ).
    let ls = linear_stratification(&rules).expect("linearly stratified");

    let mut engine = TopDownEngine::new(&rules, &db).expect("stratified");
    let yes = parse_query("?- yes.", &mut syms).unwrap();
    let no = parse_query("?- no.", &mut syms).unwrap();
    let has_path = engine.holds(&yes).unwrap();
    let complement = engine.holds(&no).unwrap();
    println!(
        "{name:<28} nodes={:<2} edges={:<2} strata={} => yes={has_path} no={complement}",
        nodes.len(),
        edges.len(),
        ls.num_strata(),
    );
    assert_ne!(has_path, complement, "YES and NO are complementary");
}

fn main() {
    println!("Hamiltonian-path decisions via hypothetical Datalog:\n");
    decide(
        "chain v1->v2->v3->v4",
        &["v1", "v2", "v3", "v4"],
        &[("v1", "v2"), ("v2", "v3"), ("v3", "v4")],
    );
    decide(
        "star (no path)",
        &["c", "l1", "l2", "l3"],
        &[("c", "l1"), ("c", "l2"), ("c", "l3")],
    );
    decide(
        "cycle",
        &["a", "b", "c"],
        &[("a", "b"), ("b", "c"), ("c", "a")],
    );
    decide(
        "two components",
        &["a", "b", "c", "d"],
        &[("a", "b"), ("c", "d")],
    );
    decide("single vertex", &["v"], &[]);
}
