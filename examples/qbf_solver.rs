//! QBF solving by hypothetical inference — Theorem 1 made tangible.
//!
//! A quantified Boolean formula with k quantifier blocks is Σₖᴾ-complete;
//! its compiled rulebase gets exactly the stratification depth the
//! theorem predicts, and all three engines decide it.
//!
//! Run with `cargo run --example qbf_solver`.

use hdl_encodings::qbf::build::{n, p, sat};
use hdl_encodings::qbf::{encode_qbf, Qbf, Quant};
use hypothetical_datalog::prelude::*;

fn solve(label: &str, qbf: &Qbf) {
    let expected = qbf.eval();
    let enc = encode_qbf(qbf).expect("encodes");
    let ls = linear_stratification(&enc.rulebase).expect("linearly stratified");
    let mut engine = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
    let derived = engine.holds(&enc.sat_query()).unwrap();
    assert_eq!(derived, expected);
    println!(
        "{label:<42} blocks={} rules={:<3} strata={} => {derived}",
        qbf.prefix.len(),
        enc.rulebase.len(),
        ls.num_strata(),
    );
}

fn main() {
    println!("QBF via hypothetical Datalog (verdicts checked against a\ndirect evaluator):\n");

    solve(
        "SAT: (x0 ∨ x1) ∧ (¬x0 ∨ x1)",
        &sat(2, vec![vec![p(0), p(1)], vec![n(0), p(1)]]),
    );
    solve("UNSAT: x0 ∧ ¬x0", &sat(1, vec![vec![p(0)], vec![n(0)]]));
    solve(
        "∃x0 ∀x1 (x0 ∨ x1)",
        &Qbf {
            prefix: vec![(Quant::Exists, vec![0]), (Quant::Forall, vec![1])],
            clauses: vec![vec![p(0), p(1)]],
        },
    );
    solve(
        "∀x0 ∃x1 (x0 ≠ x1)",
        &Qbf {
            prefix: vec![(Quant::Forall, vec![0]), (Quant::Exists, vec![1])],
            clauses: vec![vec![p(0), p(1)], vec![n(0), n(1)]],
        },
    );
    solve(
        "∃x0 ∀x1 ∃x2 (x2 ↔ x0∨x1)",
        &Qbf {
            prefix: vec![
                (Quant::Exists, vec![0]),
                (Quant::Forall, vec![1]),
                (Quant::Exists, vec![2]),
            ],
            clauses: vec![vec![n(0), p(2)], vec![n(1), p(2)], vec![p(0), p(1), n(2)]],
        },
    );

    println!("\nEach ∀-block adds a negation boundary — a stratum — which is");
    println!("exactly how Theorem 1 ties stratification depth to the");
    println!("polynomial hierarchy.");
}
