//! Example 6: deciding the parity of a relation — a query plain Datalog
//! cannot express, computed by hypothetically copying `a` into `b` one
//! tuple at a time while EVEN and ODD flip back and forth.
//!
//! Run with `cargo run --example parity`.

use hypothetical_datalog::prelude::*;
use std::fmt::Write as _;

fn main() {
    println!("|a|  even  odd   (Example 6: EVEN iff |a| is even)");
    for n in 0..=7 {
        let mut src = String::from(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).\n",
        );
        for i in 0..n {
            let _ = writeln!(src, "a(t{i}).");
        }
        let mut syms = SymbolTable::new();
        let program = parse_program(&src, &mut syms).expect("parses");
        let (rules, facts) = split_facts(program);
        let db: Database = facts.into_iter().collect();

        // All three engines agree; use the paper's own PROVE procedures
        // here, since the rulebase is linearly stratified (one stratum).
        let mut engine = ProveEngine::new(&rules, &db).expect("linearly stratified");
        assert_eq!(engine.stratification().num_strata(), 1);
        let even = engine
            .holds(&parse_query("?- even.", &mut syms).unwrap())
            .unwrap();
        let odd = engine
            .holds(&parse_query("?- odd.", &mut syms).unwrap())
            .unwrap();
        println!("{n:>3}  {even:<5} {odd:<5}");
        assert_eq!(even, n % 2 == 0);
        assert_eq!(odd, n % 2 == 1);
    }
    println!("\nNote: every copy order gives the same verdict — the order-");
    println!("independence §6 builds on (the same trick asserts linear orders).");
}
