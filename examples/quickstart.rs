//! Quickstart: the paper's university rulebase (§2, Examples 1–3).
//!
//! Run with `cargo run --example quickstart`.

use hypothetical_datalog::prelude::*;

fn main() {
    let mut syms = SymbolTable::new();
    let program = parse_program(
        "
        % Who has taken what.
        take(tony,  cs250).
        take(tony,  his101).
        take(alice, his101).
        take(alice, eng201).

        % Graduation requires both his101 and eng201.
        grad(S) :- take(S, his101), take(S, eng201).

        % Example 3: a student is within one course of a degree in D if
        % hypothetically adding one course makes them graduate in D.
        gradd(S, math) :- take(S, m1), take(S, m2).
        gradd(S, phys) :- take(S, p1), take(S, p2).
        within1(S, D)  :- gradd(S, D)[add: take(S, C)].
        gradd(S, mathphys) :- within1(S, math), within1(S, phys).
        take(sam, m1).
        take(sam, p1).
        take(sam, p2).
        ",
        &mut syms,
    )
    .expect("program parses");
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();

    let mut engine = TopDownEngine::new(&rules, &db).expect("stratified");
    let mut ask = |text: &str, syms: &mut SymbolTable| {
        let q = parse_query(text, syms).expect("query parses");
        let verdict = engine.holds(&q).expect("evaluation succeeds");
        println!("{text:<55} => {verdict}");
        verdict
    };

    println!("-- Example 1: a hypothetical query ------------------------");
    ask("?- grad(alice).", &mut syms);
    ask("?- grad(tony).", &mut syms);
    // 'If Tony took eng201, would he be eligible to graduate?'
    ask("?- grad(tony)[add: take(tony, eng201)].", &mut syms);
    ask("?- grad(tony)[add: take(tony, cs452)].", &mut syms);

    println!("\n-- Example 2: existential hypotheticals -------------------");
    // 'Could Tony graduate if he took one more course?' — ∃C.
    ask("?- grad(tony)[add: take(tony, C)].", &mut syms);

    println!("\n-- Example 3: rules with hypothetical premises -------------");
    ask("?- within1(sam, math).", &mut syms);
    ask("?- within1(sam, phys).", &mut syms);
    ask("?- gradd(sam, mathphys).", &mut syms);

    println!("\nEngine statistics: {:?}", engine.stats());
}
