//! The legal-domain motivation from the paper's introduction: Gabbay's
//! British Nationality Act example — *"You are eligible for citizenship
//! if your father would be eligible if he were still alive."*
//!
//! The counterfactual is exactly a hypothetical premise: eligibility of
//! the father is tested in a database where `alive(father)` has been
//! inserted. This is the kind of rule the paper's reference [9] found
//! Prolog unable to encode.
//!
//! Run with `cargo run --example legal_reasoning`.

use hypothetical_datalog::prelude::*;

fn main() {
    let mut syms = SymbolTable::new();
    let program = parse_program(
        "
        % Eligibility by one's own standing: born here, alive.
        eligible(X) :- born_here(X), alive(X).

        % The counterfactual clause: X is eligible if X's father WOULD BE
        % eligible WERE HE STILL ALIVE.
        eligible(X) :- father(F, X), eligible(F)[add: alive(F)].

        % Family records.
        father(george, harold).
        father(harold, william).
        born_here(george).
        born_here(william).
        alive(william).
        ",
        &mut syms,
    )
    .expect("parses");
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();
    let mut engine = TopDownEngine::new(&rules, &db).expect("stratified");

    println!("British Nationality Act, hypothetically:\n");
    for person in ["george", "harold", "william"] {
        let q = parse_query(&format!("?- eligible({person})."), &mut syms).unwrap();
        let v = engine.holds(&q).unwrap();
        println!("  eligible({person:<8}) => {v}");
    }
    println!();
    println!("george  : born here but dead — not eligible himself.");
    println!("harold  : not born here; his father george, were he alive,");
    println!("          WOULD be eligible — so harold is eligible.");
    println!("william : born here and alive — eligible outright (and the");
    println!("          counterfactual chain through harold also applies).");

    // The chain works recursively: drop william's own records and he is
    // still eligible through two nested counterfactuals.
    let program2 = parse_program(
        "
        eligible(X) :- born_here(X), alive(X).
        eligible(X) :- father(F, X), eligible(F)[add: alive(F)].
        father(george, harold).
        father(harold, william).
        born_here(george).
        ",
        &mut syms,
    )
    .unwrap();
    let (rules2, facts2) = split_facts(program2);
    let db2: Database = facts2.into_iter().collect();
    let mut engine2 = TopDownEngine::new(&rules2, &db2).unwrap();
    let q = parse_query("?- eligible(william).", &mut syms).unwrap();
    let v = engine2.holds(&q).unwrap();
    println!("\nWith only george's birth on record, william is eligible");
    println!("through nested counterfactuals: {v}");
    assert!(v);
}
