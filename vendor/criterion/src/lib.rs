//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use — benchmark groups, `bench_with_input`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! harness. Timings are medians over `sample_size` samples, each sample
//! running as many iterations as fit in `measurement_time /
//! sample_size`; results print one line per benchmark id. No statistics,
//! plots, or baselines — enough to compare shapes, which is what the
//! experiment harness needs.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

pub mod measurement {
    /// Marker trait mirroring criterion's measurement abstraction; the
    /// stand-in only measures wall time.
    pub trait Measurement {}

    /// Wall-clock measurement (the only one provided).
    pub struct WallTime;

    impl Measurement for WallTime {}
}

/// A benchmark id: `new("function", parameter)` renders as
/// `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a, M: measurement::Measurement = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a benchmark that receives an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let median = self.run(|b| f(b, input));
        self.report(&id.id, median);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let median = self.run(&mut f);
        self.report(id, median);
        self
    }

    /// Finishes the group (printing happens per benchmark; nothing to do).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, mut f: F) -> Duration {
        // Calibrate: one iteration to size the batches.
        let mut once = Duration::ZERO;
        {
            let mut b = Bencher {
                iters: 1,
                elapsed: &mut once,
            };
            f(&mut b);
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if once.is_zero() {
            100
        } else {
            (per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        // Warm up for roughly the configured time.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut scratch = Duration::ZERO;
            let mut b = Bencher {
                iters: 1,
                elapsed: &mut scratch,
            };
            f(&mut b);
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            let mut b = Bencher {
                iters,
                elapsed: &mut sample,
            };
            f(&mut b);
            per_iter.push(sample / iters as u32);
        }
        per_iter.sort_unstable();
        per_iter[per_iter.len() / 2]
    }

    fn report(&self, id: &str, median: Duration) {
        println!("{}/{id}: median {median:?} per iteration", self.name);
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group with default settings.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// Declares a benchmark group function list, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        let id = BenchmarkId::new("sat/rulebase", 4);
        assert_eq!(id.id, "sat/rulebase/4");
    }

    #[test]
    fn group_runs_closures_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0, "routine must have executed");
    }
}
