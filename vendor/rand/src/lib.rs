//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`rngs::StdRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed,
//! which is all the benchmark workloads rely on.

use std::ops::Range;

/// Types that can produce a stream of pseudo-random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (seed-from-integer subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range over empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping is fine for bench use.
        range.start + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..1000) == c.gen_range(0..1000));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = r.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }
}
