//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest's API the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! [`collection::vec`], [`sample::subsequence`], `Just`, `any::<bool>()`,
//! a regex-lite string strategy, and the `proptest!`/`prop_oneof!`/
//! `prop_assert*!`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   (`Debug`) and the case seed instead of a minimized counterexample.
//! - **Deterministic seeding.** Cases are seeded from the test name and
//!   case index, so runs are reproducible without a regression file
//!   (existing `proptest-regressions` files are ignored).
//! - **String strategies** accept only a simplified pattern form: a char
//!   class (`\PC` treated as printable) with an optional `{m,n}` length
//!   suffix.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` produces
    /// the value directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe adapter behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical strategy (only what the workspace needs).
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// A uniformly random `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `A`, like proptest's `any`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A union of same-valued strategies with integer weights
    /// (the expansion of `prop_oneof!`).
    pub struct WeightedUnion<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> WeightedUnion<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            WeightedUnion { arms, total }
        }
    }

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.below(self.total);
            for (w, arm) in &self.arms {
                if roll < *w as u64 {
                    return arm.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weighted roll below total")
        }
    }

    /// Simplified pattern strategy: `&str` generates strings whose
    /// length honours a trailing `{m,n}` repetition (defaulting to
    /// `{0,32}`) of printable characters. This models the `\PC{m,n}`
    /// patterns used by the robustness tests; other regex features are
    /// not interpreted.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repeat_suffix(self).unwrap_or((0, 32));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                out.push(printable_char(rng));
            }
            out
        }
    }

    fn parse_repeat_suffix(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let brace = body.rfind('{')?;
        let (min, max) = body[brace + 1..].split_once(',')?;
        let min: usize = min.trim().parse().ok()?;
        let max: usize = max.trim().parse().ok()?;
        (min <= max).then_some((min, max))
    }

    fn printable_char(rng: &mut TestRng) -> char {
        // Mostly ASCII printables (dense in tokens the parser knows),
        // with occasional multi-byte characters to exercise UTF-8 paths.
        match rng.below(20) {
            0 => char::from_u32(0x00C0 + rng.below(0x250 - 0xC0) as u32).unwrap_or('é'),
            1 => ['λ', '→', '∀', '∃', '≤', '⊢', '文', '字'][rng.below(8) as usize],
            _ => (0x20u8 + rng.below(0x5F) as u8) as char,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        pub(crate) fn sample(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Generates `Vec`s of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates order-preserving subsequences of `values` with a length
    /// in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.size.sample(rng).min(self.values.len());
            // Floyd's algorithm for k distinct indices, then sort to
            // preserve source order.
            let n = self.values.len();
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            for j in n - k..n {
                let t = rng.below((j + 1) as u64) as usize;
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod test_runner {
    /// Per-case pseudo-random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Runner configuration (only the `cases` knob is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// How one test case ended (other than passing).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: not a counterexample, skip the case.
        Reject,
        /// `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Drives one property: deterministic seeds per `(name, case)`, a
    /// bounded rejection budget, and a panic carrying the inputs of the
    /// first failing case.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let name_seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = config.cases as u64 * 64;
        let mut index = 0u64;
        while passed < config.cases {
            let seed = name_seed ^ index.wrapping_mul(0x9e3779b97f4a7c15);
            let mut rng = TestRng::new(seed);
            let (inputs, outcome) = case(&mut rng);
            index += 1;
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        // Too sparse a precondition: accept what ran.
                        return;
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed at case #{index} (seed {seed:#x}):\n\
                         {msg}\ninputs:\n{inputs}"
                    );
                }
            }
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `proptest! { #![proptest_config(...)] #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            #[allow(unused_parens, non_snake_case)]
            let ($($pat,)+) = {
                // Bind strategy tuple fields back to the pattern names so
                // the per-case closure can reference them.
                strategies
            };
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&$pat, __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($pat), &$pat));)+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Weighted or unweighted strategy union.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds (not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(42);
        let s = (0u8..3, 10usize..=12).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 3);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = crate::test_runner::TestRng::new(7);
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..400 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2], "weighted arm should dominate: {seen:?}");
    }

    #[test]
    fn collection_vec_and_subsequence_respect_sizes() {
        let mut rng = crate::test_runner::TestRng::new(9);
        let v = crate::collection::vec(0u8..5, 2..=4);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..=4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
        let sub = crate::sample::subsequence((0usize..6).collect::<Vec<_>>(), 0..=6);
        for _ in 0..100 {
            let xs = sub.generate(&mut rng);
            assert!(xs.len() <= 6);
            assert!(
                xs.windows(2).all(|w| w[0] < w[1]),
                "order preserved: {xs:?}"
            );
        }
    }

    #[test]
    fn string_pattern_respects_length_suffix() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..50 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0usize..10, ys in crate::collection::vec(0u8..3, 0..4)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10, "x = {}", x);
            prop_assert_eq!(ys.len() < 4, true);
        }
    }
}
